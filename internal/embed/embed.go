// Package embed implements the first step of the paper's global phase: the
// force-directed 2D embedding of VMs (Sect. IV-B.1, Eqs. 5-7).
//
// Every VM is a point in the plane. For each ordered pair, a total force
//
//	F_t = alpha*F_a + (1-alpha)*F_r
//
// combines the attraction F_a in [-1,0) from data correlation and the
// repulsion F_r in (0,1] from CPU-load correlation. Per iteration the
// resultant force on each point is resolved into X/Y components (Eq. 6) and
// the point is displaced by 1/2*F*t^2. Iteration stops when the alignment
// cost CostAR_k = sum F_t*(d_k - d_{k-1}) (Eq. 7) drops below its previous
// value — movement has stopped helping — or when MaxIters is reached. The
// final layout seeds both the k-means step and the next slot's embedding.
//
// Pair force magnitudes depend only on the slot's correlation data, not on
// positions, so in exact mode (up to Config.ExactThreshold points) they are
// evaluated once into a dense cache and the iterations are pure float
// arithmetic. Above the threshold each point's repulsion is estimated from
// SampleK deterministic random peers per iteration while attraction stays
// exact over the sparse data pairs; this approximation (documented in
// DESIGN.md) keeps the paper-scale problem real-time, matching the paper's
// "low computational overhead" claim.
package embed

import (
	"math"
	"sync"

	"geovmp/internal/par"
	"geovmp/internal/rng"
)

// Point is a 2D location.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Field supplies pairwise forces. Implementations are provided by the core
// controller, which knows the slot's correlation data.
type Field interface {
	// Force returns F_t exerted on point `onto` by point `by` (Eq. 5):
	// negative values attract `onto` toward `by`, positive repel.
	Force(onto, by int) float64
	// AttractionPeers returns the ids that exert non-zero attraction on id
	// (its data-correlated peers). Used to keep sparse attraction exact in
	// sampled mode; may return nil.
	AttractionPeers(id int) []int
}

// SplitField is an optional Field extension exposing Eq. 5's structure: a
// symmetric repulsive term per pair plus sparse directed attraction edges.
// The exact mode uses it to build its dense force cache from one repulsion
// evaluation per unordered pair plus one pass over the attraction edges,
// instead of two full Force evaluations (each probing the volume matrix)
// per pair; the sampled mode batches each point's hashed repulsion partners
// through one RepulsionRow call, skipping the volume probe that dominates
// Force on the (overwhelmingly common) non-communicating pairs. The
// decomposition must satisfy
// Force(onto, by) == Repulsion(onto, by) + the attraction fa reported for
// (onto, by), with Repulsion symmetric.
type SplitField interface {
	// RepulsionRow fills dst[k] with the symmetric repulsive component of
	// the (a, bs[k]) pair force, already blended by the field's weighting.
	RepulsionRow(a int, bs []int, dst []float64)
	// EachAttraction calls fn for every nonzero directed attraction term:
	// fa is the (already blended, negative) attractive component of
	// Force(onto, by).
	EachAttraction(fn func(onto, by int, fa float64))
}

// Config tunes the embedding.
type Config struct {
	TimeStep       float64 // t in Eq. 6 (default 1)
	MaxIters       int     // iteration cap (default 30)
	MaxDisplace    float64 // per-iteration displacement clamp (default 4)
	ExactThreshold int     // max N for exact all-pairs forces (default 512)
	SampleK        int     // sampled repulsion peers above the threshold (default 96)
	InitRadius     float64 // scatter radius for points without a position (default 10)
	// Gravity pulls every point toward the origin with force Gravity x
	// distance per iteration (default 0.02; negative disables). Eq. 6
	// alone lets the dense repulsion field expand the cloud without bound
	// across slots; a weak centering force caps the radius while leaving
	// relative structure — the quantity k-means consumes — intact.
	Gravity float64
	// StopFrac ends the iteration once the alignment cost CostAR (Eq. 7)
	// falls below this fraction of its peak value (default 0.15; negative
	// disables, leaving only MaxIters). The paper stops at the first
	// iteration whose cost is lower than the previous one; with clamped
	// displacements productivity declines monotonically from iteration
	// one, so the literal rule would always stop after three iterations —
	// the fraction-of-peak test preserves the rule's intent ("stop when
	// movement stops helping") and actually converges.
	StopFrac float64
	// RepulsionScale (kappa, default 8; negative disables) normalizes the
	// dense repulsion field: repulsive pair forces are weighted by
	// min(1, kappa/(n-1)) so a point's total repulsion stays comparable to
	// its total attraction at any fleet size. Eq. 6's raw sums are
	// scale-dependent — with thousands of points the O(n) repulsion sum
	// drowns the O(degree) attraction and no data-locality structure can
	// form; at the paper's problem sizes the weight saturates at 1 and the
	// literal equation is recovered.
	RepulsionScale float64
	Seed           uint64 // keys deterministic scatter and sampling
	// FastMath opts into the approximate fast-numeric run modes (default
	// off — the exact paths are untouched and bit-identical to prior
	// releases). Above the exact threshold the sampled mode freezes each
	// point's hashed repulsion peers for the whole run and evaluates their
	// forces once into a per-run table, so iterations become pure float
	// arithmetic; at or below the threshold the exact algorithm runs
	// unchanged but its dense repulsion build may be served from Cache.
	// Callers pairing this with a correlation field should also enable the
	// field's quantized kernel (see correlation.ProfileSet.SetFastMath) —
	// the combination is the documented fast mode with its FastEps error
	// budget.
	FastMath bool
	// Cache, when non-nil and FastMath is set and the Field implements
	// GenField (and SplitField), retains force state across runs keyed by
	// generation counters: warm restarts recompute only rows whose inputs
	// changed. Reuse is exact — hits return bit-identical forces. The
	// cache must not be shared between concurrent runs.
	Cache *Cache
	// Workers optionally lends extra goroutines to the embedding's sharded
	// passes: the exact mode's dense force-cache build and the sampled
	// mode's per-point repulsion estimation, both of which write disjoint
	// outputs per point and are therefore bit-identical to serial execution
	// at any worker count. When set, the Field (and SplitField) must be
	// safe for concurrent readers — the controller's correlation field is.
	// Nil runs everything on the caller's goroutine.
	Workers *par.Budget
}

func (c *Config) applyDefaults() {
	if c.TimeStep == 0 {
		c.TimeStep = 1
	}
	if c.MaxIters == 0 {
		c.MaxIters = 30
	}
	if c.MaxDisplace == 0 {
		c.MaxDisplace = 4
	}
	if c.ExactThreshold == 0 {
		c.ExactThreshold = 512
	}
	if c.SampleK == 0 {
		c.SampleK = 96
	}
	if c.InitRadius == 0 {
		c.InitRadius = 10
	}
	switch {
	case c.Gravity == 0:
		c.Gravity = 0.02
	case c.Gravity < 0:
		c.Gravity = 0
	}
	if c.RepulsionScale == 0 {
		c.RepulsionScale = 8
	}
	switch {
	case c.StopFrac == 0:
		c.StopFrac = 0.15
	case c.StopFrac < 0:
		c.StopFrac = 0
	}
}

// stopNow evaluates the halting rule given the cost history peak.
func (c Config) stopNow(iter int, cost, peak float64) bool {
	return iter >= 2 && c.StopFrac > 0 && peak > 0 && cost < c.StopFrac*peak
}

// repulsionWeight returns the class weight for repulsive pair forces at
// fleet size n.
func (c Config) repulsionWeight(n int) float64 {
	if c.RepulsionScale < 0 || n <= 1 {
		return 1
	}
	w := c.RepulsionScale / float64(n-1)
	if w > 1 {
		return 1
	}
	return w
}

// Result reports the embedding outcome.
type Result struct {
	Pos        map[int]Point // final positions for every input id
	Iterations int           // iterations actually executed
	Cost       []float64     // CostAR per iteration (Eq. 7)
}

// InitialPosition returns the deterministic scatter position used for a
// point with no inherited location: a hash-angle placement on a disc. It is
// exported so callers can pre-place new VMs consistently.
func InitialPosition(id int, radius float64, seed uint64) Point {
	ang := rng.Noise01(seed, uint64(id), 0xA06) * 2 * math.Pi
	r := math.Sqrt(rng.Noise01(seed, uint64(id), 0xD15)) * radius
	return Point{X: r * math.Cos(ang), Y: r * math.Sin(ang)}
}

// Run executes the embedding over ids. init provides inherited positions
// (the paper carries positions across slots); ids absent from init are
// scattered deterministically.
func Run(ids []int, init map[int]Point, field Field, cfg Config) Result {
	cfg.applyDefaults()
	n := len(ids)
	px := make([]float64, n)
	py := make([]float64, n)
	idx := make(map[int]int, n)
	for k, id := range ids {
		idx[id] = k
		p, ok := init[id]
		if !ok {
			p = InitialPosition(id, cfg.InitRadius, cfg.Seed)
		}
		px[k], py[k] = p.X, p.Y
	}
	finish := func(iters int, cost []float64) Result {
		pos := make(map[int]Point, n)
		for k, id := range ids {
			pos[id] = Point{X: px[k], Y: py[k]}
		}
		return Result{Pos: pos, Iterations: iters, Cost: cost}
	}
	if n < 2 {
		return finish(0, nil)
	}
	if n <= cfg.ExactThreshold {
		iters, cost := runExact(ids, idx, px, py, field, cfg)
		return finish(iters, cost)
	}
	if cfg.FastMath {
		iters, cost := runSampledFast(ids, idx, px, py, field, cfg)
		return finish(iters, cost)
	}
	iters, cost := runSampled(ids, idx, px, py, field, cfg)
	return finish(iters, cost)
}

// Shard grains of the parallel passes. Fixed constants keep shard
// boundaries a pure function of the problem size (see internal/par), and
// both are sized so a shard amortizes the claim overhead while leaving
// enough shards for load balancing across the triangle's shrinking rows.
const (
	exactRowGrain     = 8  // rows per shard of the dense cache build
	sampledPointGrain = 32 // points per shard of the sampled repulsion pass
)

// exactScratch pools runExact's O(n^2) caches so per-slot embeddings reuse
// them instead of allocating ~4 n^2 floats each. Only i != j entries are
// ever read, so recycled buffers need no clearing.
type exactScratch struct{ ft, ftT, wft, wftT, sft, prevD []float64 }

var exactPool = sync.Pool{New: func() any { return new(exactScratch) }}

func (s *exactScratch) ensure(n2 int) {
	if cap(s.ft) < n2 {
		s.ft = make([]float64, n2)
		s.ftT = make([]float64, n2)
		s.wft = make([]float64, n2)
		s.wftT = make([]float64, n2)
		s.sft = make([]float64, n2)
		s.prevD = make([]float64, n2)
	}
	s.ft = s.ft[:n2]
	s.ftT = s.ftT[:n2]
	s.wft = s.wft[:n2]
	s.wftT = s.wftT[:n2]
	s.sft = s.sft[:n2]
	s.prevD = s.prevD[:n2]
}

// runExact evaluates all ordered pairs with a dense, once-computed force
// cache.
func runExact(ids []int, idx map[int]int, px, py []float64, field Field, cfg Config) (int, []float64) {
	n := len(ids)
	scr := exactPool.Get().(*exactScratch)
	scr.ensure(n * n)
	defer exactPool.Put(scr)
	// Both force directions of each unordered pair live at the same
	// row-major upper-triangle index — ft[i*n+j] is the force on ids[i] by
	// ids[j] and ftT[i*n+j] the force on ids[j] by ids[i], i < j — so the
	// build and every per-iteration sweep run on sequential memory; the
	// lower triangles are never touched (hence never cleared).
	ft := scr.ft
	ftT := scr.ftT
	if sf, ok := field.(SplitField); ok {
		// Structured build: one symmetric repulsion row per point, copied
		// to both directions, then the sparse attraction edges on top.
		// Addition order matches the blended Force expression exactly
		// (fa + fr, commutative). Rows are sharded in contiguous batches —
		// each shard writes only its own upper-triangle rows — so the build
		// is bit-identical to the serial sweep at any worker count.
		gf, hasGen := field.(GenField)
		if cfg.FastMath && cfg.Cache != nil && hasGen {
			// Warm restart: serve unchanged repulsion pairs from the
			// generation-validated cache instead of recomputing them.
			cfg.Cache.denseBuild(sf, gf, ids, ft, n, cfg.Workers)
			par.For(cfg.Workers, n, exactRowGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					copy(ftT[i*n+i+1:i*n+n], ft[i*n+i+1:i*n+n])
				}
			})
		} else {
			par.For(cfg.Workers, n, exactRowGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					row := ft[i*n+i+1 : i*n+n]
					sf.RepulsionRow(ids[i], ids[i+1:], row)
					copy(ftT[i*n+i+1:i*n+n], row)
				}
			})
		}
		sf.EachAttraction(func(onto, by int, fa float64) {
			i, ok1 := idx[onto]
			j, ok2 := idx[by]
			if !ok1 || !ok2 || i == j {
				return
			}
			if i < j {
				ft[i*n+j] += fa
			} else {
				ftT[j*n+i] += fa
			}
		})
	} else {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ft[i*n+j] = field.Force(ids[i], ids[j])
				ftT[i*n+j] = field.Force(ids[j], ids[i])
			}
		}
	}
	// Iteration caches: the repulsion class weight applied once instead of
	// per iteration, and the symmetric pair sum the cost function reads.
	rw := cfg.repulsionWeight(n)
	weight := func(f float64) float64 {
		if f > 0 {
			return f * rw
		}
		return f
	}
	wft := scr.wft
	wftT := scr.wftT
	sft := scr.sft
	prevD := scr.prevD
	par.For(cfg.Workers, n, exactRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for k := i*n + i + 1; k < i*n+n; k++ {
				wft[k] = weight(ft[k])
				wftT[k] = weight(ftT[k])
				sft[k] = ft[k] + ftT[k]
			}
			for j := i + 1; j < n; j++ {
				dx := px[i] - px[j]
				dy := py[i] - py[j]
				prevD[i*n+j] = math.Sqrt(dx*dx + dy*dy)
			}
		}
	})

	fx := make([]float64, n)
	fy := make([]float64, n)
	var costs []float64
	peak := 0.0
	iters := 0
	// Each pass fuses the force evaluation over the current positions with
	// the cost (Eq. 7) of the *previous* iteration's displacement — both
	// need the same pair sweep and the same Euclidean distance, computed
	// once per pair — so one O(n^2) pass per iteration replaces the former
	// two.
	pass := func(iter int, withForces bool) float64 {
		var cost float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := px[i] - px[j]
				dy := py[i] - py[j]
				d := math.Sqrt(dx*dx + dy*dy)
				if iter > 0 {
					cost += sft[i*n+j] * (d - prevD[i*n+j])
					prevD[i*n+j] = d
				}
				if !withForces {
					continue
				}
				if d < 1e-9 {
					ang := rng.Noise01(cfg.Seed, uint64(i), uint64(j), uint64(iter)) * 2 * math.Pi
					dx, dy, d = math.Cos(ang), math.Sin(ang), 1
				}
				ux, uy := dx/d, dy/d
				fij := wft[i*n+j]  // on i by j: positive pushes i along (j->i)
				fji := wftT[i*n+j] // on j by i: positive pushes j along (i->j)
				fx[i] += fij * ux
				fy[i] += fij * uy
				fx[j] -= fji * ux
				fy[j] -= fji * uy
			}
		}
		return cost
	}
	record := func(cost float64) bool {
		costs = append(costs, cost)
		if cost > peak {
			peak = cost
		}
		return cfg.stopNow(iters-1, cost, peak)
	}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		cost := pass(iter, true)
		if iter > 0 && record(cost) {
			break
		}
		displace(px, py, fx, fy, cfg)
		iters = iter + 1
	}
	if len(costs) < iters {
		// MaxIters displacements executed: the last one's cost is pending.
		record(pass(iters, false))
	}
	return iters, costs
}

// runSampled keeps attraction exact over the sparse data-correlated pairs
// and estimates repulsion from SampleK hashed peers per point per
// iteration. The cost function is evaluated over the exact attraction pairs
// (the stable subset), which preserves the stopping rule's intent.
func runSampled(ids []int, idx map[int]int, px, py []float64, field Field, cfg Config) (int, []float64) {
	n := len(ids)
	sf, _ := field.(SplitField)
	apairs, attracted := buildAttraction(ids, idx, field)
	prevD := make([]float64, len(apairs))
	for k, p := range apairs {
		dx := px[p.i] - px[p.j]
		dy := py[p.i] - py[p.j]
		prevD[k] = math.Sqrt(dx*dx + dy*dy)
	}

	// Repulsion scale: each point samples SampleK of the n-1 possible
	// peers; scaling the sampled sum by (n-1)/SampleK estimates the full
	// Eq. 6 sum, and the repulsion class weight then normalizes it against
	// the sparse attraction. The two compose to kappa/SampleK.
	scale := float64(n-1) / float64(cfg.SampleK) * cfg.repulsionWeight(n)
	rw := cfg.repulsionWeight(n)
	weight := func(f float64) float64 {
		if f > 0 {
			return f * rw
		}
		return f
	}

	fx := make([]float64, n)
	fy := make([]float64, n)
	var costs []float64
	peak := 0.0
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		for k := range apairs {
			p := &apairs[k]
			dx := px[p.i] - px[p.j]
			dy := py[p.i] - py[p.j]
			d := math.Sqrt(dx*dx + dy*dy)
			if d < 1e-9 {
				ang := rng.Noise01(cfg.Seed, uint64(p.i), uint64(p.j), uint64(iter)) * 2 * math.Pi
				dx, dy, d = math.Cos(ang), math.Sin(ang), 1
			}
			ux, uy := dx/d, dy/d
			fx[p.i] += weight(p.fij) * ux
			fy[p.i] += weight(p.fij) * uy
			fx[p.j] -= weight(p.fji) * ux
			fy[p.j] -= weight(p.fji) * uy
		}
		// The sampled repulsion estimate writes only fx[i]/fy[i] and reads
		// only positions frozen for the whole pass, so sharding the points
		// leaves every accumulation order — and hence every float — exactly
		// as in the serial loop. With a SplitField, each point's hashed
		// partners are batched through one RepulsionRow call — hoisting the
		// point's profile state out of the per-sample loop and skipping the
		// volume probe Force would pay — except the rare partners that are
		// attraction peers, which keep the full Force evaluation. Each
		// repulsion value is a pure per-pair function and the accumulation
		// below runs in sample order either way, so both paths are
		// bit-identical.
		par.For(cfg.Workers, n, sampledPointGrain, func(lo, hi int) {
			var scr *sampleScratch
			if sf != nil {
				scr = samplePool.Get().(*sampleScratch)
				defer samplePool.Put(scr)
			}
			for i := lo; i < hi; i++ {
				att := attracted[i]
				var rep []float64 // repulsion per non-attracted sample, in sample order
				var kj []int32
				if sf != nil {
					js := scr.js[:0]
					kj = scr.kj[:0]
					if len(att) == 0 {
						// No attraction peers (the common point): every
						// non-self sample takes the batched repulsion path.
						for k := 0; k < cfg.SampleK; k++ {
							j := int32(rng.Hash(cfg.Seed, uint64(i), uint64(iter), uint64(k)) % uint64(n))
							kj = append(kj, j)
							if int(j) != i {
								js = append(js, ids[j])
							}
						}
					} else {
						for k := 0; k < cfg.SampleK; k++ {
							j := int32(rng.Hash(cfg.Seed, uint64(i), uint64(iter), uint64(k)) % uint64(n))
							kj = append(kj, j)
							if int(j) != i && !containsIdx(att, j) {
								js = append(js, ids[j])
							}
						}
					}
					if cap(scr.dst) < len(js) {
						scr.dst = make([]float64, len(js))
					}
					rep = scr.dst[:len(js)]
					sf.RepulsionRow(ids[i], js, rep)
					scr.js, scr.kj = js, kj
				}
				cur := 0
				for k := 0; k < cfg.SampleK; k++ {
					var j int
					var f float64
					if sf != nil {
						j = int(kj[k])
						if j == i {
							continue
						}
						if containsIdx(att, int32(j)) {
							f = field.Force(ids[i], ids[j])
						} else {
							f = rep[cur]
							cur++
						}
					} else {
						j = int(rng.Hash(cfg.Seed, uint64(i), uint64(iter), uint64(k)) % uint64(n))
						if j == i {
							continue
						}
						f = field.Force(ids[i], ids[j])
					}
					if f <= 0 {
						continue // attraction handled exactly above
					}
					dx := px[i] - px[j]
					dy := py[i] - py[j]
					d := math.Sqrt(dx*dx + dy*dy)
					if d < 1e-9 {
						ang := rng.Noise01(cfg.Seed, uint64(i), uint64(j), uint64(iter)) * 2 * math.Pi
						dx, dy, d = math.Cos(ang), math.Sin(ang), 1
					}
					fx[i] += f * scale * dx / d
					fy[i] += f * scale * dy / d
				}
			}
		})
		displace(px, py, fx, fy, cfg)

		var cost float64
		for k, p := range apairs {
			// The same Sqrt distance metric the exact mode's cost uses.
			dx := px[p.i] - px[p.j]
			dy := py[p.i] - py[p.j]
			d := math.Sqrt(dx*dx + dy*dy)
			cost += (p.fij + p.fji) * (d - prevD[k])
			prevD[k] = d
		}
		costs = append(costs, cost)
		iters = iter + 1
		if cost > peak {
			peak = cost
		}
		if cfg.stopNow(iter, cost, peak) {
			break
		}
	}
	return iters, costs
}

// apair is one exact attraction pair of the sampled modes, with both
// directed force components.
type apair struct {
	i, j int
	fij  float64 // on i by j
	fji  float64 // on j by i
}

// buildAttraction collects the unique attraction pairs with their exact
// directed forces, plus attracted[i] — the point indices declared as
// attraction peers of i (either direction): exactly the pairs the
// repulsion-only fast path must not take. Shared by both sampled modes so
// the exact-attraction subset is identical between them.
func buildAttraction(ids []int, idx map[int]int, field Field) ([]apair, [][]int32) {
	n := len(ids)
	var apairs []apair
	attracted := make([][]int32, n)
	seen := make(map[[2]int]bool)
	for i, id := range ids {
		for _, peer := range field.AttractionPeers(id) {
			j, ok := idx[peer]
			if !ok || i == j {
				continue
			}
			key := [2]int{min(i, j), max(i, j)}
			if seen[key] {
				continue
			}
			seen[key] = true
			attracted[key[0]] = append(attracted[key[0]], int32(key[1]))
			attracted[key[1]] = append(attracted[key[1]], int32(key[0]))
			apairs = append(apairs, apair{
				i: key[0], j: key[1],
				fij: field.Force(ids[key[0]], ids[key[1]]),
				fji: field.Force(ids[key[1]], ids[key[0]]),
			})
		}
	}
	return apairs, attracted
}

// displace applies Eq. 6's 1/2*F*t^2 step with the per-point clamp and the
// centering gravity.
func displace(px, py, fx, fy []float64, cfg Config) {
	half := 0.5 * cfg.TimeStep * cfg.TimeStep
	for i := range px {
		dx := half*fx[i] - cfg.Gravity*px[i]
		dy := half*fy[i] - cfg.Gravity*py[i]
		if m := math.Sqrt(dx*dx + dy*dy); m > cfg.MaxDisplace {
			s := cfg.MaxDisplace / m
			dx *= s
			dy *= s
		}
		px[i] += dx
		py[i] += dy
	}
}

// containsIdx reports membership in a point's (short) attraction-peer list.
func containsIdx(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// sampleScratch pools the sampled pass's per-shard batching buffers: the
// hashed partner per sample (kj), the compacted non-attracted partner ids
// (js) and their bulk repulsion values (dst).
type sampleScratch struct {
	js  []int
	kj  []int32
	dst []float64
}

var samplePool = sync.Pool{New: func() any { return new(sampleScratch) }}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
