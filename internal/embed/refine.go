package embed

import (
	"math"

	"geovmp/internal/rng"
)

// RefineOne is the incremental counterpart of Run for a single arriving
// point: with the rest of the layout frozen, it iterates Eq. 6 on id alone —
// exact attraction against id's data-correlated peers, repulsion estimated
// from SampleK hashed partners per iteration as in the sampled mode — and
// returns the refined position. Only id's row of the force field is ever
// evaluated, so the cost is O(iters x (degree + SampleK)) regardless of
// fleet size: this is what lets a streaming controller seat one arrival
// without re-running the global embedding (a background reconciler restores
// the full-fidelity layout periodically).
//
// pos supplies the frozen layout and id's seed position (ids absent from
// pos scatter via InitialPosition); others lists the resident points id may
// be repelled by, in any caller-deterministic order. The result is a pure
// function of the arguments.
func RefineOne(id int, others []int, pos map[int]Point, field Field, cfg Config, iters int) Point {
	cfg.applyDefaults()
	p, ok := pos[id]
	if !ok {
		p = InitialPosition(id, cfg.InitRadius, cfg.Seed)
	}
	n := len(others) + 1
	if n < 2 || iters <= 0 {
		return p
	}
	peers := field.AttractionPeers(id)
	rw := cfg.repulsionWeight(n)
	scale := float64(n-1) / float64(cfg.SampleK) * rw
	half := 0.5 * cfg.TimeStep * cfg.TimeStep
	for iter := 0; iter < iters; iter++ {
		var fxv, fyv float64
		pull := func(q Point, f float64) {
			dx := p.X - q.X
			dy := p.Y - q.Y
			d := math.Sqrt(dx*dx + dy*dy)
			if d < 1e-9 {
				ang := rng.Noise01(cfg.Seed, uint64(id), 0x1F1, uint64(iter)) * 2 * math.Pi
				dx, dy, d = math.Cos(ang), math.Sin(ang), 1
			}
			fxv += f * dx / d
			fyv += f * dy / d
		}
		// Exact attraction over the sparse peer set; repulsive components of
		// peer forces carry the same class weight the full modes apply.
		for _, peer := range peers {
			q, ok := pos[peer]
			if !ok || peer == id {
				continue
			}
			f := field.Force(id, peer)
			if f > 0 {
				f *= rw
			}
			pull(q, f)
		}
		// Sampled repulsion over the rest of the fleet.
		for k := 0; k < cfg.SampleK; k++ {
			j := others[rng.Hash(cfg.Seed, uint64(id), uint64(iter), uint64(k))%uint64(len(others))]
			if j == id || containsPeer(peers, j) {
				continue // self, or already handled exactly above
			}
			q, ok := pos[j]
			if !ok {
				continue
			}
			f := field.Force(id, j)
			if f <= 0 {
				continue // attraction is exact over peers only
			}
			pull(q, f*scale)
		}
		// Eq. 6 displacement with the standard clamp and centering gravity.
		dx := half*fxv - cfg.Gravity*p.X
		dy := half*fyv - cfg.Gravity*p.Y
		if m := math.Sqrt(dx*dx + dy*dy); m > cfg.MaxDisplace {
			s := cfg.MaxDisplace / m
			dx *= s
			dy *= s
		}
		p.X += dx
		p.Y += dy
	}
	return p
}

// containsPeer reports membership in a point's (short) attraction-peer list.
func containsPeer(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
