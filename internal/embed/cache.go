package embed

// Cache retains force state across embedding runs in fast-math mode, so a
// warm restart (the rolling-horizon engine's epoch boundary, a daemon's
// steady state) recomputes only the rows whose correlation inputs actually
// changed. Validity is tracked with the GenField generation counters: a
// cached value is reused only when every VM it depends on reports the same
// generation as when it was computed, so reuse is exact — a cache hit
// returns bit-identical forces to a fresh evaluation.
//
// The cache is owned by the caller (the proposed controller holds one per
// simulation, handed to every Run via Config.Cache) and must not be shared
// between concurrently running embeddings.
type Cache struct {
	// Sampled-mode state: the frozen hashed peer table and the force per
	// (point, sample), both n x SampleK, plus the generation snapshot they
	// were computed under. Valid only while the run signature — seed,
	// SampleK and the exact ids slice — matches, since the hashed peer
	// indices are a pure function of those.
	ids  []int
	seed uint64
	k    int
	gens []uint64
	kj   []int32
	f    []float64

	// Dense-mode state: the upper-triangle repulsion values of the last
	// exact-mode build and the generation snapshot they were computed
	// under, for the same ids-slice signature.
	denseIDs  []int
	denseGens []uint64
	denseRep  []float64

	// Stats accumulates reuse accounting across runs. Counters are updated
	// serially (validity scans run on the caller's goroutine), so totals
	// are deterministic at any worker count.
	Stats CacheStats
}

// CacheStats counts cache outcomes cumulatively across runs: sampled-mode
// force rows and dense-mode repulsion pairs, computed fresh versus reused.
type CacheStats struct {
	RowsComputed  uint64
	RowsReused    uint64
	PairsComputed uint64
	PairsReused   uint64
}

// NewCache returns an empty force cache.
func NewCache() *Cache { return &Cache{} }

// GenField is an optional Field extension exposing per-VM change counters.
// Generation(id) must move whenever any input that could alter a force
// involving id changes (its utilization profile, any volume cell touching
// it); equal generations guarantee equal forces. The fast-math cache
// requires it — a Field without it disables cross-run reuse.
type GenField interface {
	Generation(id int) uint64
}

// sameIDs reports whether a and b hold the same ids in the same order.
func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
