package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"geovmp/internal/experiment"
	"geovmp/internal/metrics"
	"geovmp/internal/par"
)

// WorkerConfig parameterizes RunWorker. Only Coordinator is required.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name identifies this worker in coordinator logs and metrics.
	Name string
	// Parallelism is the worker's total budget for intra-cell sharding;
	// <= 0 selects GOMAXPROCS. Cells are evaluated one at a time (the
	// grid's cell-level parallelism lives in how many workers connect),
	// with the full budget funding each cell's sharded passes — results
	// are byte-identical at any value.
	Parallelism int
	// CacheColumns bounds how many compiled scenario x seed columns the
	// worker keeps hot across cells. Default 2 (the current column plus
	// one — enough for a coordinator draining one column at a time with
	// occasional retries from an older one).
	CacheColumns int
	// Poll is the idle re-poll fallback when the coordinator gives no
	// wait hint. Default 200 ms.
	Poll time.Duration
	// IdleExit, when positive, makes RunWorker return nil once the
	// coordinator has been unreachable for this long — for one-shot
	// deployments (CI jobs, batch scripts) that should wind down with the
	// sweep. The default (0) keeps polling forever, which is what lets a
	// long-lived worker survive a coordinator restart-and-resume.
	IdleExit time.Duration
	// Board receives worker-side metrics; nil allocates a private one.
	Board *metrics.Board
	// Logf, when set, receives one line per notable event.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests inject one wired straight
	// to an in-process coordinator).
	Client *http.Client
}

// RunWorker connects to a coordinator and evaluates leased cells until the
// coordinator reports done or ctx is cancelled. Each cell is compiled and
// evaluated with the same engine code the in-process sweep uses
// (CompileColumn + RunOnColumn), so the rows it streams back are
// byte-identical to a local run's export. Columns are cached across cells
// sharing a scenario x seed, mirroring the in-process column sharing.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return fmt.Errorf("dist: worker needs a coordinator URL")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheColumns <= 0 {
		cfg.CacheColumns = 2
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Board == nil {
		cfg.Board = metrics.NewBoard()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	w := &worker{
		cfg:      cfg,
		cells:    cfg.Board.Counter("dist_worker_cells"),
		errors:   cfg.Board.Counter("dist_worker_errors"),
		rejects:  cfg.Board.Counter("dist_worker_rejects"),
		compiles: cfg.Board.Counter("dist_worker_compiles"),
		hits:     cfg.Board.Counter("dist_worker_column_hits"),
		cellTime: cfg.Board.Hist("dist_worker_cell_latency"),
		columns:  make(map[string]*columnEntry),
	}
	return w.run(ctx)
}

type worker struct {
	cfg      WorkerConfig
	cells    *metrics.Counter
	errors   *metrics.Counter
	rejects  *metrics.Counter
	compiles *metrics.Counter
	hits     *metrics.Counter
	cellTime *metrics.LatencyHist

	mu      sync.Mutex
	columns map[string]*columnEntry
	useSeq  int64
}

type columnEntry struct {
	col     *experiment.Column
	err     error
	ready   chan struct{} // closed once col/err is set
	lastUse int64
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *worker) run(ctx context.Context) error {
	lastContact := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp leaseResponse
		if err := w.post(ctx, "/v1/lease", leaseRequest{Worker: w.cfg.Name}, &resp); err != nil {
			// A refused connection is how a worker outlives its
			// coordinator; back off and retry until ctx (or IdleExit)
			// says otherwise.
			if w.cfg.IdleExit > 0 && time.Since(lastContact) > w.cfg.IdleExit {
				w.logf("dist[%s]: coordinator unreachable for %s, exiting", w.cfg.Name, w.cfg.IdleExit)
				return nil
			}
			w.logf("dist[%s]: lease: %v", w.cfg.Name, err)
			if !sleep(ctx, w.cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		lastContact = time.Now()
		switch {
		case resp.Done:
			w.logf("dist[%s]: coordinator done, exiting", w.cfg.Name)
			return nil
		case resp.Item == nil:
			wait := time.Duration(resp.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = w.cfg.Poll
			}
			if !sleep(ctx, wait) {
				return ctx.Err()
			}
		default:
			w.process(ctx, resp.Item)
		}
	}
}

// process evaluates one leased cell and reports its outcome.
func (w *worker) process(ctx context.Context, item *WorkItem) {
	start := time.Now()
	res := resultRequest{
		Lease:       item.Lease,
		Cell:        item.Cell,
		Worker:      w.cfg.Name,
		Fingerprint: item.Fingerprint,
	}

	// Re-derive the fingerprint from the decoded spec. The round trip
	// through JSON is the point: if this build's Spec schema drifted from
	// the coordinator's, the re-marshal hashes differently and the item is
	// rejected as belonging to another universe.
	fp, err := experiment.SpecFingerprint(item.Spec, item.Seed)
	if err == nil && fp != item.Fingerprint {
		err = fmt.Errorf("spec fingerprint mismatch: coordinator %q, worker %q (version skew?)", item.Fingerprint, fp)
	}
	if err != nil {
		w.rejects.Inc()
		res.Error = err.Error()
		res.Permanent = true
		w.report(ctx, &res)
		return
	}
	mk, err := ResolvePolicy(item.Policy)
	if err != nil {
		w.rejects.Inc()
		res.Error = err.Error()
		res.Permanent = true
		w.report(ctx, &res)
		return
	}

	// Keep the lease alive while compiling and simulating; losing it
	// (coordinator restarted, lease expired anyway) aborts the cell — some
	// other worker owns it now.
	cellCtx, cancel := context.WithCancelCause(ctx)
	hbDone := make(chan struct{})
	go w.heartbeat(cellCtx, cancel, item, hbDone)

	col, err := w.column(cellCtx, item)
	var row *experiment.CellData
	if err == nil {
		ps := experiment.PolicySpec{Name: item.PolicyName, New: mk}
		var r *experiment.Cell
		result, runErr := experiment.RunOnColumn(cellCtx, item.Spec, ps, item.Seed, col, par.NewBudget(w.cfg.Parallelism-1))
		err = runErr
		if err == nil {
			r = &experiment.Cell{Scenario: item.Scenario, Policy: item.PolicyName, Seed: item.Seed, Result: result}
			data := r.Export()
			row = &data
		}
	}
	cancel(nil)
	<-hbDone
	w.cellTime.Observe(time.Since(start))

	if err != nil {
		if lostLease(cellCtx) {
			// The lease is gone: the coordinator already re-queued the
			// cell, reporting would be noise.
			w.logf("dist[%s]: cell %d abandoned: lease lost", w.cfg.Name, item.Cell)
			return
		}
		w.errors.Inc()
		res.Error = err.Error()
		w.report(ctx, &res)
		return
	}
	res.Row = row
	w.cells.Inc()
	w.report(ctx, &res)
}

// heartbeat keeps the item's lease alive until ctx is cancelled, cancelling
// the cell with errLeaseLost if the coordinator reports the lease gone.
func (w *worker) heartbeat(ctx context.Context, cancel context.CancelCauseFunc, item *WorkItem, done chan<- struct{}) {
	defer close(done)
	every := time.Duration(item.LeaseMS) * time.Millisecond / 3
	if every <= 0 {
		every = 5 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp okResponse
			err := w.post(ctx, "/v1/heartbeat", heartbeatRequest{Lease: item.Lease}, &resp)
			if err != nil {
				var gone *protocolError
				if isGone(err, &gone) {
					cancel(errLeaseLost)
					return
				}
				// Transient network trouble: keep trying until the lease
				// actually dies.
				w.logf("dist[%s]: heartbeat: %v", w.cfg.Name, err)
			}
		}
	}
}

var errLeaseLost = fmt.Errorf("dist: lease lost")

func lostLease(ctx context.Context) bool {
	return context.Cause(ctx) == errLeaseLost
}

// column returns the compiled column for the item's spec x seed, compiling
// it once and caching it across cells. Concurrent requests for the same
// fingerprint wait for the single compile.
func (w *worker) column(ctx context.Context, item *WorkItem) (*experiment.Column, error) {
	w.mu.Lock()
	w.useSeq++
	if e, ok := w.columns[item.Fingerprint]; ok {
		e.lastUse = w.useSeq
		w.mu.Unlock()
		<-e.ready
		if e.err == nil {
			w.hits.Inc()
		}
		return e.col, e.err
	}
	e := &columnEntry{ready: make(chan struct{}), lastUse: w.useSeq}
	w.columns[item.Fingerprint] = e
	// Evict the least recently used settled entries over the cap. The
	// evicted column stays valid for any cell still holding it (columns
	// are immutable); eviction only drops the cache's reference.
	for len(w.columns) > w.cfg.CacheColumns {
		var oldest string
		var oldestUse int64
		for fp, c := range w.columns {
			if c == e {
				continue
			}
			select {
			case <-c.ready:
			default:
				continue // compile in flight, not evictable
			}
			if oldest == "" || c.lastUse < oldestUse {
				oldest, oldestUse = fp, c.lastUse
			}
		}
		if oldest == "" {
			break
		}
		delete(w.columns, oldest)
	}
	w.mu.Unlock()

	w.compiles.Inc()
	col, err := experiment.CompileColumn(item.Spec, item.Seed, par.NewBudget(w.cfg.Parallelism-1))
	if err == nil && col.Fingerprint() != item.Fingerprint {
		err = fmt.Errorf("dist: compiled column fingerprint %q != item %q", col.Fingerprint(), item.Fingerprint)
		col = nil
	}
	if err != nil {
		err = fmt.Errorf("dist: compile column for cell %d: %w", item.Cell, err)
	}
	e.col, e.err = col, err
	close(e.ready)
	if err != nil {
		// Do not cache failures: a transient cause (cancellation) would
		// otherwise poison every future cell of the column.
		w.mu.Lock()
		if w.columns[item.Fingerprint] == e {
			delete(w.columns, item.Fingerprint)
		}
		w.mu.Unlock()
	}
	return col, err
}

// report posts the cell outcome, retrying transient failures briefly —
// losing a computed result to one connection blip would waste a whole
// cell's compute.
func (w *worker) report(ctx context.Context, res *resultRequest) {
	for attempt := 0; attempt < 3; attempt++ {
		var resp okResponse
		err := w.post(ctx, "/v1/result", res, &resp)
		if err == nil {
			return
		}
		var gone *protocolError
		if isGone(err, &gone) {
			w.logf("dist[%s]: result for cell %d dropped: %v", w.cfg.Name, res.Cell, err)
			return
		}
		w.logf("dist[%s]: report cell %d: %v", w.cfg.Name, res.Cell, err)
		if !sleep(ctx, time.Duration(attempt+1)*200*time.Millisecond) {
			return
		}
	}
}

// protocolError is a non-2xx coordinator response.
type protocolError struct {
	Status int
	Msg    string
}

func (e *protocolError) Error() string {
	return fmt.Sprintf("dist: coordinator returned %d: %s", e.Status, e.Msg)
}

// isGone reports whether err is a 409/410 protocol response — the
// coordinator telling this worker its work no longer belongs to it.
func isGone(err error, out **protocolError) bool {
	pe, ok := err.(*protocolError)
	if !ok {
		return false
	}
	*out = pe
	return pe.Status == http.StatusGone || pe.Status == http.StatusConflict
}

func (w *worker) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var perr errorResponse
		json.Unmarshal(data, &perr)
		return &protocolError{Status: resp.StatusCode, Msg: perr.Error}
	}
	return json.Unmarshal(data, out)
}

// sleep waits d or until ctx is cancelled; it reports whether the full
// wait elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
