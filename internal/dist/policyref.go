package dist

import (
	"fmt"

	"geovmp/internal/core"
	"geovmp/internal/experiment"
	"geovmp/internal/policy"
)

// Policy ref kinds understood by ResolvePolicy. The registry is the wire
// contract: a coordinator only schedules policies whose PolicySpec carries a
// Ref, and every worker resolves the same kind to the same constructor, so
// the distributed sweep evaluates exactly the policy the in-process sweep
// would.
const (
	KindProposed     = "proposed"     // core.New(Alpha, seed), NoEmbedding knob
	KindEnerAware    = "ener"         // policy.EnerAware
	KindPriAware     = "pri"          // policy.PriAware
	KindNetAware     = "net"          // policy.NetAware
	KindParetoSearch = "paretosearch" // policy.NewParetoSearch(seed)
)

// ResolvePolicy turns a wire-form PolicyRef back into a per-cell
// constructor equivalent to the one the grid's author registered. Unknown
// kinds are an error — on the worker side that error is reported permanent,
// since no amount of retrying teaches a worker a kind its build lacks.
func ResolvePolicy(ref experiment.PolicyRef) (func(seed uint64) policy.Policy, error) {
	switch ref.Kind {
	case KindProposed:
		alpha, noEmbed := ref.Alpha, ref.NoEmbedding
		return func(seed uint64) policy.Policy {
			c := core.New(alpha, seed)
			c.NoEmbedding = noEmbed
			return c
		}, nil
	case KindEnerAware:
		return func(uint64) policy.Policy { return policy.EnerAware{} }, nil
	case KindPriAware:
		return func(uint64) policy.Policy { return policy.PriAware{} }, nil
	case KindNetAware:
		return func(uint64) policy.Policy { return policy.NetAware{} }, nil
	case KindParetoSearch:
		return func(seed uint64) policy.Policy { return policy.NewParetoSearch(seed) }, nil
	}
	return nil, fmt.Errorf("dist: unknown policy kind %q", ref.Kind)
}

// PolicySpecFromRef builds a complete PolicySpec — local constructor plus
// wire form — from a ref, under the given display name. Grid authors that
// want distribution-ready specs for knobbed variants (an alpha sweep, the
// no-embedding ablation) build them here so the in-process and distributed
// paths construct provably the same policy.
func PolicySpecFromRef(name string, ref experiment.PolicyRef) (experiment.PolicySpec, error) {
	mk, err := ResolvePolicy(ref)
	if err != nil {
		return experiment.PolicySpec{}, err
	}
	r := ref
	return experiment.PolicySpec{Name: name, New: mk, Ref: &r}, nil
}
