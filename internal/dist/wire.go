// Package dist shards an experiment grid across machines: a Coordinator
// decomposes the grid into cell work items, hands them out over an HTTP/JSON
// lease protocol, and merges the returned rows into the canonical-ordered
// Set — byte-identical to running the same grid in one process, because the
// engine is deterministic and the flattened CellData row is the engine's own
// export encoding.
//
// The protocol is deliberately dumb: workers pull, the coordinator never
// pushes. A work item is leased for a bounded time and kept alive by
// heartbeats; a worker that dies mid-cell simply lets its lease expire, and
// the coordinator re-queues the cell with capped exponential backoff.
// Determinism makes every failure mode safe to retry: a cell computed twice
// (late result after an expiry re-lease) produces identical bytes, so the
// coordinator accepts whichever copy lands first and counts the other as a
// duplicate.
//
//	POST /v1/lease      {worker} -> {item} | {wait_ms} | {done}
//	POST /v1/heartbeat  {lease} -> 200 | 410 gone
//	POST /v1/result     {lease, cell, fingerprint, row|error} -> 200
//	GET  /v1/status     sweep progress counters
//	GET  /metrics       metrics.Board text exposition
//	GET  /healthz       liveness
//
// Work items carry the full scenario spec plus a PolicyRef (the policy's
// registered wire form — closures cannot travel), and are keyed by the
// spec x seed fingerprint (experiment.SpecFingerprint). Both sides compute
// the fingerprint independently, so schema skew between coordinator and
// worker builds surfaces as a rejected item instead of silently
// wrong-universe results.
package dist

import (
	"geovmp/internal/config"
	"geovmp/internal/experiment"
)

// WorkItem is one leased grid cell: everything a worker needs to compile
// the scenario column and evaluate the policy locally.
type WorkItem struct {
	// Cell is the grid index of the cell in the coordinator's Set; results
	// are addressed by it, so late results survive lease churn.
	Cell int `json:"cell"`
	// Scenario is the resolved scenario display name (spec.Name or the
	// engine default) — the name the exported row must carry.
	Scenario string `json:"scenario"`
	// PolicyName is the grid's display name for the policy (may differ
	// from the Ref kind: ablation grids name variants).
	PolicyName string `json:"policy_name"`
	// Seed is the cell's absolute seed (scenario base + offset).
	Seed uint64 `json:"seed"`
	// Fingerprint is experiment.SpecFingerprint(Spec, Seed) as computed by
	// the coordinator. The worker recomputes it from the decoded spec and
	// rejects the item on mismatch.
	Fingerprint string `json:"fingerprint"`
	// Spec is the full scenario spec (its Workload interface field is nil
	// by construction — injected workloads cannot be distributed).
	Spec config.Spec `json:"spec"`
	// Policy is the policy's wire form, resolved through ResolvePolicy.
	Policy experiment.PolicyRef `json:"policy"`
	// Lease is the opaque lease token heartbeats and the result carry.
	Lease string `json:"lease"`
	// LeaseMS is the lease TTL; the worker heartbeats at a fraction of it.
	LeaseMS int64 `json:"lease_ms"`
}

type leaseRequest struct {
	Worker string `json:"worker,omitempty"`
}

type leaseResponse struct {
	// Item is the leased cell, nil when no work is available right now.
	Item *WorkItem `json:"item,omitempty"`
	// WaitMS hints how long an idle worker should sleep before re-polling.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Done tells the worker the coordinator is finished for good: no
	// further grids will be served, exit cleanly.
	Done bool `json:"done,omitempty"`
}

type heartbeatRequest struct {
	Lease string `json:"lease"`
}

type resultRequest struct {
	Lease  string `json:"lease"`
	Cell   int    `json:"cell"`
	Worker string `json:"worker,omitempty"`
	// Fingerprint echoes the item's spec fingerprint; the coordinator
	// drops rows whose fingerprint does not match the cell it addresses.
	Fingerprint string `json:"fingerprint"`
	// Row is the flattened cell outcome (exactly what the in-process
	// engine's Export would emit for the same cell).
	Row *experiment.CellData `json:"row,omitempty"`
	// Error reports a failed evaluation instead of a row.
	Error string `json:"error,omitempty"`
	// Permanent marks the error as non-retryable (fingerprint mismatch,
	// unknown policy kind): the coordinator fails the cell immediately
	// instead of re-queueing it.
	Permanent bool `json:"permanent,omitempty"`
}

type okResponse struct {
	OK bool `json:"ok"`
}

// StatusResponse is the coordinator's sweep progress snapshot (GET
// /v1/status).
type StatusResponse struct {
	// Active reports whether a grid is currently being served.
	Active bool `json:"active"`
	// Closed reports whether the coordinator has shut down for good.
	Closed bool `json:"closed"`
	Total  int  `json:"total"`  // cells in the active grid
	Done   int  `json:"done"`   // cells with an accepted outcome
	Leased int  `json:"leased"` // cells currently out on lease
	Queued int  `json:"queued"` // cells waiting (including backoff holds)
	Failed int  `json:"failed"` // cells failed permanently
}

type errorResponse struct {
	Error string `json:"error"`
}
