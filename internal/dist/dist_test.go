package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geovmp/internal/config"
	"geovmp/internal/experiment"
	"geovmp/internal/timeutil"
)

// testGrid is the dist regression grid: two presets x two policies x two
// seeds, tiny and short — the same worlds the golden grid pins, so cell
// runtimes stay test-sized.
func testGrid(t *testing.T) experiment.Grid {
	t.Helper()
	static, err := config.Preset("paper-geo3dc")
	if err != nil {
		t.Fatal(err)
	}
	static.Scale = 0.01
	static.Seed = 7
	static.Horizon = timeutil.Hours(8)
	static.FineStepSec = 300

	dynamic, err := config.Preset("geo5dc-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	dynamic.Scale = 0.005
	dynamic.Seed = 11
	dynamic.Horizon = timeutil.Hours(8)
	dynamic.FineStepSec = 300

	proposed, err := PolicySpecFromRef("Proposed", experiment.PolicyRef{Kind: KindProposed, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ener, err := PolicySpecFromRef("Ener-aware", experiment.PolicyRef{Kind: KindEnerAware})
	if err != nil {
		t.Fatal(err)
	}
	return experiment.Grid{
		Scenarios:   []config.Spec{static, dynamic},
		Policies:    []experiment.PolicySpec{proposed, ener},
		SeedOffsets: []uint64{0, 1},
	}
}

// inProcessJSON runs the grid with the plain in-process engine.
func inProcessJSON(t *testing.T, g experiment.Grid) []byte {
	t.Helper()
	set, err := experiment.Run(context.Background(), g)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	b, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func startWorker(ctx context.Context, t *testing.T, url, name string) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: url,
			Name:        name,
			Parallelism: 1,
			Poll:        10 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()
	return done
}

func TestDistSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	g := testGrid(t)
	want := inProcessJSON(t, g)

	coord, err := NewCoordinator(Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var workers []chan error
	for i := 0; i < 3; i++ {
		workers = append(workers, startWorker(ctx, t, coord.URL(), fmt.Sprintf("w%d", i)))
	}

	set, err := coord.RunGrid(ctx, g)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	got, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed JSON differs from in-process JSON:\n--- dist (%d bytes)\n%.2000s\n--- in-process (%d bytes)\n%.2000s", len(got), got, len(want), want)
	}

	// No cell may survive as a live Result on the coordinator: every
	// outcome arrived as a flattened row.
	for i := range set.Cells {
		if set.Cells[i].Result != nil {
			t.Fatalf("cell %d carries a live Result on the coordinator", i)
		}
		if set.Cells[i].Data == nil {
			t.Fatalf("cell %d has no data", i)
		}
	}

	coord.Finish()
	for i, w := range workers {
		select {
		case err := <-w:
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d did not exit after coordinator close", i)
		}
	}
}

// TestDistWorkerKilledMidCell kills one worker while it holds a lease; the
// lease expires, the cell is re-queued, a second worker finishes the sweep,
// and the merged output is still byte-identical.
func TestDistWorkerKilledMidCell(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	g := testGrid(t)
	want := inProcessJSON(t, g)

	coord, err := NewCoordinator(Config{
		LeaseTTL:  300 * time.Millisecond,
		RetryBase: 20 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	runDone := make(chan struct{})
	var set *experiment.Set
	var runErr error
	go func() {
		defer close(runDone)
		set, runErr = coord.RunGrid(ctx, g)
	}()

	// Take one lease directly and abandon it — on the wire this IS a
	// worker killed mid-cell: the lease is out, no heartbeat or result
	// ever arrives, and only expiry can rescue the cell. (Killing a live
	// worker goroutine between cells would race: the tiny test cells
	// complete in milliseconds.)
	deadline := time.Now().Add(30 * time.Second)
	var doomed *WorkItem
	for doomed == nil {
		if time.Now().After(deadline) {
			t.Fatal("never obtained the doomed lease")
		}
		body, _ := json.Marshal(leaseRequest{Worker: "killed-mid-cell"})
		resp, err := http.Post(coord.URL()+"/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var lr leaseResponse
		json.NewDecoder(resp.Body).Decode(&lr)
		resp.Body.Close()
		doomed = lr.Item
		if doomed == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("abandoning lease %s on cell %d", doomed.Lease, doomed.Cell)

	// A real victim worker too: killed while the sweep is in flight.
	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	victim := startWorker(victimCtx, t, coord.URL(), "victim")
	time.Sleep(50 * time.Millisecond)
	kill()
	<-victim

	// The survivor finishes everything, including the orphaned cell.
	survivor := startWorker(ctx, t, coord.URL(), "survivor")
	<-runDone
	if runErr != nil {
		t.Fatalf("distributed run: %v", runErr)
	}
	got, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-kill JSON differs from in-process JSON")
	}
	if exp := coord.Board().Counter("dist_leases_expired").Value(); exp == 0 {
		t.Fatalf("expected at least one expired lease, board shows none")
	}

	coord.Finish()
	<-survivor
}

// TestDistResume checkpoints a sweep, then replays the grid from the
// checkpoint with zero workers connected: every cell is preloaded, no lease
// is ever granted, and the export is byte-identical.
func TestDistResume(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	g := testGrid(t)
	want := inProcessJSON(t, g)
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")

	coord, err := NewCoordinator(Config{CheckpointPath: ckPath, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	w := startWorker(ctx, t, coord.URL(), "w0")
	if _, err := coord.RunGrid(ctx, g); err != nil {
		t.Fatalf("first run: %v", err)
	}

	ck, err := experiment.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Loaded != 8 {
		t.Fatalf("checkpoint holds %d rows, want 8", ck.Loaded)
	}

	// Full resume: a fresh coordinator with NO workers must complete the
	// grid instantly from the checkpoint alone.
	coord2, err := NewCoordinator(Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	g2 := g
	g2.Resume = ck
	rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
	defer rcancel()
	set, err := coord2.RunGrid(rctx, g2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed JSON differs from in-process JSON")
	}
	if n := coord2.Board().Counter("dist_leases").Value(); n != 0 {
		t.Fatalf("full resume leased %d cells, want 0", n)
	}

	coord.Finish()
	<-w
}

// TestDistPartialResume drops half the checkpoint rows and verifies the
// coordinator schedules exactly the missing cells.
func TestDistPartialResume(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	g := testGrid(t)
	want := inProcessJSON(t, g)

	// Build a full checkpoint from the in-process run's own export, then
	// keep only the first 5 of 8 rows.
	var doc struct {
		Scenarios   []string          `json:"scenarios"`
		Policies    []string          `json:"policies"`
		SeedOffsets []uint64          `json:"seed_offsets"`
		Cells       []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Cells = doc.Cells[:5]
	partial, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := experiment.ParseCheckpoint(partial)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Loaded != 5 {
		t.Fatalf("partial checkpoint holds %d rows, want 5", ck.Loaded)
	}

	coord, err := NewCoordinator(Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	w := startWorker(ctx, t, coord.URL(), "w0")

	g2 := g
	g2.Resume = ck
	set, err := coord.RunGrid(ctx, g2)
	if err != nil {
		t.Fatalf("partial-resume run: %v", err)
	}
	got, err := set.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("partial-resume JSON differs from in-process JSON")
	}
	if n := coord.Board().Counter("dist_results").Value(); n != 3 {
		t.Fatalf("partial resume computed %d cells, want 3", n)
	}

	coord.Finish()
	<-w
}

// TestDistRejectsForgedResult posts a result whose fingerprint does not
// match the cell and expects a 409.
func TestDistRejectsForgedResult(t *testing.T) {
	g := testGrid(t)
	coord, err := NewCoordinator(Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		coord.RunGrid(ctx, g)
	}()
	// Wait for the grid to become active.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st StatusResponse
		resp, err := http.Get(coord.URL() + "/v1/status")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if st.Active {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("grid never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}

	body, _ := json.Marshal(resultRequest{
		Cell:        0,
		Fingerprint: "deadbeef",
		Row:         &experiment.CellData{Scenario: "paper-geo3dc", Policy: "Proposed", Seed: 7},
	})
	resp, err := http.Post(coord.URL()+"/v1/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("forged result got status %d, want 409", resp.StatusCode)
	}
	if n := coord.Board().Counter("dist_results_rejected").Value(); n != 1 {
		t.Fatalf("rejected counter = %d, want 1", n)
	}
	cancel()
	<-runDone
}

// TestDistRequiresRefs: a grid with closure-only policies cannot travel.
func TestDistRequiresRefs(t *testing.T) {
	g := testGrid(t)
	g.Policies = append(g.Policies, experiment.PolicySpec{
		Name: "closure-only",
		New:  g.Policies[0].New,
	})
	coord, err := NewCoordinator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.RunGrid(context.Background(), g); err == nil {
		t.Fatal("RunGrid accepted a grid with a Ref-less policy")
	}
}

// TestResolvePolicyUnknownKind: unknown kinds are errors, not silent
// defaults.
func TestResolvePolicyUnknownKind(t *testing.T) {
	if _, err := ResolvePolicy(experiment.PolicyRef{Kind: "does-not-exist"}); err == nil {
		t.Fatal("ResolvePolicy accepted an unknown kind")
	}
	if _, err := PolicySpecFromRef("x", experiment.PolicyRef{Kind: "nope"}); err == nil {
		t.Fatal("PolicySpecFromRef accepted an unknown kind")
	}
}

// TestDistCheckpointMatchesGoldenSchema: the coordinator's checkpoint file
// parses as a checkpoint AND round-trips through the golden-JSON schema.
func TestDistCheckpointMatchesGoldenSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is not -short sized")
	}
	g := testGrid(t)
	want := inProcessJSON(t, g)
	ckPath := filepath.Join(t.TempDir(), "checkpoint.json")

	coord, err := NewCoordinator(Config{CheckpointPath: ckPath, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	w := startWorker(ctx, t, coord.URL(), "w0")
	if _, err := coord.RunGrid(ctx, g); err != nil {
		t.Fatal(err)
	}
	coord.Finish()
	<-w

	// A completed sweep's checkpoint IS the golden export, byte for byte.
	ckBytes, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimRight(ckBytes, "\n"), bytes.TrimRight(want, "\n")) {
		t.Fatalf("completed checkpoint differs from the golden-format export")
	}
}
