package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"geovmp/internal/experiment"
	"geovmp/internal/metrics"
)

// Config parameterizes a Coordinator. The zero value is usable: loopback
// listener on an ephemeral port, 30 s leases, 5 attempts per cell.
type Config struct {
	// Addr is the listen address; empty means "127.0.0.1:0" (loopback,
	// ephemeral port — read the bound address back with URL).
	Addr string
	// LeaseTTL bounds how long a cell stays leased without a heartbeat
	// before it is re-queued. Default 30 s.
	LeaseTTL time.Duration
	// MaxAttempts caps how many times a cell is leased before the
	// coordinator gives up and records the cell as failed. Default 5.
	MaxAttempts int
	// RetryBase and RetryMax shape the capped exponential backoff a
	// re-queued cell waits before its next lease: base<<(attempt-1),
	// clamped to max. Defaults 250 ms and 10 s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// CheckpointPath, when set, persists the sweep's completed cells after
	// every accepted result (written atomically via rename) in the
	// Set.CheckpointJSON format, so a killed coordinator resumes via
	// experiment.LoadCheckpoint + Grid.Resume without recomputing them.
	CheckpointPath string
	// Board receives the coordinator's operational metrics; nil allocates
	// a private one. Exposed at GET /metrics.
	Board *metrics.Board
	// Logf, when set, receives one line per notable protocol event.
	Logf func(format string, args ...any)
}

// Coordinator serves grid cells to workers and merges what they return.
// Construction binds the listener immediately (URL is valid before any
// grid is served); RunGrid then serves one grid at a time — a frontier
// driver calls it once per refinement wave over the same worker pool, and
// idle workers between waves are parked with a wait hint. Close tells
// workers to exit and releases the listener.
type Coordinator struct {
	cfg   Config
	ln    net.Listener
	srv   *http.Server
	board *metrics.Board

	leases      *metrics.Counter
	expired     *metrics.Counter
	results     *metrics.Counter
	duplicates  *metrics.Counter
	late        *metrics.Counter
	rejected    *metrics.Counter
	retries     *metrics.Counter
	failed      *metrics.Counter
	leasedGauge *metrics.Gauge
	queueGauge  *metrics.Gauge
	cellTime    *metrics.LatencyHist

	mu     sync.Mutex
	run    *gridRun
	closed bool
	seq    uint64

	progressMu sync.Mutex
}

// item is one not-yet-done cell of the active grid.
type item struct {
	idx       int // grid index into the run's Set
	wire      WorkItem
	attempts  int
	notBefore time.Time // backoff hold after a retryable failure
	lease     *lease    // non-nil while out on lease
	done      bool
	failed    bool
}

type lease struct {
	token    string
	it       *item
	worker   string
	deadline time.Time
	started  time.Time
}

type gridRun struct {
	grid        experiment.Grid
	set         *experiment.Set
	items       map[int]*item // by grid index; only cells that need work
	queue       []*item       // FIFO of unleased items (some on backoff hold)
	leases      map[string]*lease
	outstanding int // items without an accepted outcome
	doneCount   int // cells with an outcome, including preloaded ones
	doneCh      chan struct{}
}

// NewCoordinator binds the listener and starts serving the protocol. No
// grid is active until RunGrid; early workers poll and receive wait hints.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 250 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 10 * time.Second
	}
	board := cfg.Board
	if board == nil {
		board = metrics.NewBoard()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", cfg.Addr, err)
	}
	c := &Coordinator{
		cfg:         cfg,
		ln:          ln,
		board:       board,
		leases:      board.Counter("dist_leases"),
		expired:     board.Counter("dist_leases_expired"),
		results:     board.Counter("dist_results"),
		duplicates:  board.Counter("dist_results_duplicate"),
		late:        board.Counter("dist_results_late"),
		rejected:    board.Counter("dist_results_rejected"),
		retries:     board.Counter("dist_cell_retries"),
		failed:      board.Counter("dist_cells_failed"),
		leasedGauge: board.Gauge("dist_cells_leased"),
		queueGauge:  board.Gauge("dist_queue_depth"),
		cellTime:    board.Hist("dist_cell_latency"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(c.board.Snapshot().Text()))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	return c, nil
}

// URL returns the coordinator's base URL (http://host:port) — valid
// immediately after NewCoordinator, before any grid is served.
func (c *Coordinator) URL() string { return "http://" + c.ln.Addr().String() }

// Board returns the coordinator's metrics board.
func (c *Coordinator) Board() *metrics.Board { return c.board }

// Finish marks the coordinator done for good: no further grids will be
// served, and from now on lease requests answer done:true so connected
// workers drain and exit on their next poll. The listener stays up (so
// those polls can still be answered) until Close.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Close finishes the coordinator and shuts the listener down. Callers that
// want workers to exit cleanly call Finish first, give them a poll interval
// to observe it, then Close.
func (c *Coordinator) Close() error {
	c.Finish()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return c.srv.Shutdown(ctx)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// RunGrid serves the grid's cells to workers until every cell has an
// outcome, then returns the merged Set — the same Set, cell for cell, that
// experiment.Run would produce in-process. Cells preloaded through
// g.Resume are never scheduled. Only one grid runs at a time; a second
// concurrent call errors.
func (c *Coordinator) RunGrid(ctx context.Context, g experiment.Grid) (*experiment.Set, error) {
	for _, p := range g.Policies {
		if p.New != nil && p.Ref == nil {
			return nil, fmt.Errorf("dist: policy %q has no serializable Ref — build it with PolicySpecFromRef (closures cannot travel)", p.Name)
		}
	}
	set, err := experiment.NewSet(g)
	if err != nil {
		return nil, err
	}
	// Fingerprint every scenario x seed up front; a spec that cannot
	// travel (injected workload) fails the sweep before any lease.
	fps := make(map[string]string, len(g.Scenarios)*len(set.SeedOffsets))
	for si, spec := range g.Scenarios {
		for _, off := range set.SeedOffsets {
			seed := spec.Seed + off
			fp, err := experiment.SpecFingerprint(spec, seed)
			if err != nil {
				return nil, err
			}
			fps[fmt.Sprintf("%d/%d", si, seed)] = fp
		}
	}

	run := &gridRun{
		grid:   g,
		set:    set,
		items:  make(map[int]*item),
		leases: make(map[string]*lease),
		doneCh: make(chan struct{}),
	}
	for i := range set.Cells {
		cell := &set.Cells[i]
		if cell.Done() {
			run.doneCount++
			continue
		}
		si, pi, _ := set.Coords(cell.Index)
		it := &item{
			idx: cell.Index,
			wire: WorkItem{
				Cell:        cell.Index,
				Scenario:    cell.Scenario,
				PolicyName:  cell.Policy,
				Seed:        cell.Seed,
				Fingerprint: fps[fmt.Sprintf("%d/%d", si, cell.Seed)],
				Spec:        g.Scenarios[si],
				Policy:      *g.Policies[pi].Ref,
			},
		}
		run.items[cell.Index] = it
		run.queue = append(run.queue, it)
		run.outstanding++
	}
	// Hand cells out column-major — all policies of one scenario x seed
	// before the next seed — so the consecutive cells a worker leases share
	// its cached compiled column instead of thrashing it. Export order is
	// canonical regardless, so this is invisible in the merged Set.
	sort.SliceStable(run.queue, func(a, b int) bool {
		sa, pa, ka := set.Coords(run.queue[a].idx)
		sb, pb, kb := set.Coords(run.queue[b].idx)
		if sa != sb {
			return sa < sb
		}
		if ka != kb {
			return ka < kb
		}
		return pa < pb
	})

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: coordinator is closed")
	}
	if c.run != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: a grid is already being served")
	}
	c.run = run
	c.queueGauge.Set(int64(len(run.queue)))
	outstanding := run.outstanding
	c.mu.Unlock()

	c.logf("dist: serving grid: %d cells (%d preloaded) at %s", len(set.Cells), run.doneCount, c.URL())
	defer func() {
		c.mu.Lock()
		c.run = nil
		c.queueGauge.Set(0)
		c.leasedGauge.Set(0)
		c.mu.Unlock()
	}()

	if outstanding == 0 {
		c.checkpoint(run)
		return set, set.Err()
	}

	// The wait loop doubles as the expiry scanner, so leases die on
	// schedule even when no worker request ever arrives again.
	scan := c.cfg.LeaseTTL / 4
	if scan > time.Second {
		scan = time.Second
	}
	if scan < 10*time.Millisecond {
		scan = 10 * time.Millisecond
	}
	ticker := time.NewTicker(scan)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Abandon unfinished cells: they keep their identity in the
			// Set with the cancellation recorded, like an in-process run.
			c.mu.Lock()
			for _, it := range run.items {
				if !it.done {
					it.done = true
					set.Cells[it.idx].Err = context.Cause(ctx)
				}
			}
			c.mu.Unlock()
			return set, fmt.Errorf("dist: sweep cancelled: %w", context.Cause(ctx))
		case <-ticker.C:
			c.mu.Lock()
			c.expireLocked(run, time.Now())
			c.mu.Unlock()
		case <-run.doneCh:
			return set, set.Err()
		}
	}
}

// expireLocked re-queues leases whose deadline passed. Callers hold c.mu.
func (c *Coordinator) expireLocked(run *gridRun, now time.Time) {
	for token, l := range run.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(run.leases, token)
		c.leasedGauge.Dec()
		c.expired.Inc()
		it := l.it
		it.lease = nil
		if it.done {
			continue
		}
		c.logf("dist: lease %s (cell %d, worker %s) expired after attempt %d", token, it.idx, l.worker, it.attempts)
		c.requeueLocked(run, it, "lease expired")
	}
}

// requeueLocked returns a failed/expired item to the queue under backoff,
// or fails its cell for good once attempts are exhausted. Callers hold c.mu.
func (c *Coordinator) requeueLocked(run *gridRun, it *item, why string) {
	if it.attempts >= c.cfg.MaxAttempts {
		c.failLocked(run, it, fmt.Errorf("dist: cell %d failed after %d attempts: %s", it.idx, it.attempts, why))
		return
	}
	backoff := c.cfg.RetryBase << (it.attempts - 1)
	if backoff > c.cfg.RetryMax || backoff <= 0 {
		backoff = c.cfg.RetryMax
	}
	it.notBefore = time.Now().Add(backoff)
	run.queue = append(run.queue, it)
	c.queueGauge.Set(int64(len(run.queue)))
	c.retries.Inc()
}

// failLocked records a permanent cell failure. Callers hold c.mu.
func (c *Coordinator) failLocked(run *gridRun, it *item, err error) {
	it.done = true
	it.failed = true
	run.set.Cells[it.idx].Err = err
	c.failed.Inc()
	c.logf("dist: %v", err)
	c.finishLocked(run, it)
}

// finishLocked accounts one item's completion. Callers hold c.mu.
func (c *Coordinator) finishLocked(run *gridRun, it *item) {
	run.outstanding--
	run.doneCount++
	if run.outstanding == 0 {
		close(run.doneCh)
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad lease request: " + err.Error()})
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		writeJSON(w, http.StatusOK, leaseResponse{Done: true})
		return
	}
	run := c.run
	if run == nil {
		writeJSON(w, http.StatusOK, leaseResponse{WaitMS: c.pollWaitMS()})
		return
	}
	c.expireLocked(run, now)
	// Pop the first queued item whose backoff hold has passed, dropping
	// items a late result already completed.
	var it *item
	live := run.queue[:0]
	for _, q := range run.queue {
		switch {
		case q.done:
			// drop
		case it == nil && !now.Before(q.notBefore):
			it = q
		default:
			live = append(live, q)
		}
	}
	run.queue = live
	c.queueGauge.Set(int64(len(run.queue)))
	if it == nil {
		writeJSON(w, http.StatusOK, leaseResponse{WaitMS: c.pollWaitMS()})
		return
	}
	it.attempts++
	c.seq++
	l := &lease{
		token:    fmt.Sprintf("L%08x-%d", c.seq, it.idx),
		it:       it,
		worker:   req.Worker,
		deadline: now.Add(c.cfg.LeaseTTL),
		started:  now,
	}
	it.lease = l
	run.leases[l.token] = l
	c.leases.Inc()
	c.leasedGauge.Inc()
	item := it.wire
	item.Lease = l.token
	item.LeaseMS = c.cfg.LeaseTTL.Milliseconds()
	writeJSON(w, http.StatusOK, leaseResponse{Item: &item})
}

// pollWaitMS is the sleep hint for idle workers: a fraction of the lease
// TTL, clamped to stay responsive in tests and gentle in production.
func (c *Coordinator) pollWaitMS() int64 {
	wait := c.cfg.LeaseTTL / 10
	if wait < 25*time.Millisecond {
		wait = 25 * time.Millisecond
	}
	if wait > 2*time.Second {
		wait = 2 * time.Second
	}
	return wait.Milliseconds()
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad heartbeat: " + err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	run := c.run
	if run == nil {
		writeJSON(w, http.StatusGone, errorResponse{Error: "no active grid"})
		return
	}
	l, ok := run.leases[req.Lease]
	if !ok {
		writeJSON(w, http.StatusGone, errorResponse{Error: "lease unknown or expired"})
		return
	}
	l.deadline = time.Now().Add(c.cfg.LeaseTTL)
	writeJSON(w, http.StatusOK, okResponse{OK: true})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad result: " + err.Error()})
		return
	}
	c.mu.Lock()
	run := c.run
	if run == nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusGone, errorResponse{Error: "no active grid"})
		return
	}
	it, ok := run.items[req.Cell]
	if !ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown cell %d", req.Cell)})
		return
	}
	if req.Fingerprint != it.wire.Fingerprint {
		c.rejected.Inc()
		c.mu.Unlock()
		c.logf("dist: rejected result for cell %d: fingerprint %q != %q", req.Cell, req.Fingerprint, it.wire.Fingerprint)
		writeJSON(w, http.StatusConflict, errorResponse{Error: "fingerprint mismatch"})
		return
	}
	// The lease may be gone (expired, cell re-leased elsewhere): the
	// result is still valid — determinism guarantees a late copy carries
	// the same bytes a retry will — so accept it and retire the lease the
	// retry holds, if any.
	if l, ok := run.leases[req.Lease]; ok {
		c.cellTime.Observe(time.Since(l.started))
		delete(run.leases, req.Lease)
		c.leasedGauge.Dec()
		l.it.lease = nil
	} else {
		c.late.Inc()
	}
	if it.done {
		c.duplicates.Inc()
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, okResponse{OK: true})
		return
	}
	if req.Error != "" {
		if req.Permanent {
			c.failLocked(run, it, fmt.Errorf("dist: cell %d rejected by worker %s: %s", it.idx, req.Worker, req.Error))
		} else {
			c.logf("dist: cell %d attempt %d failed on worker %s: %s", it.idx, it.attempts, req.Worker, req.Error)
			c.requeueLocked(run, it, req.Error)
		}
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, okResponse{OK: true})
		return
	}
	if req.Row == nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "result carries neither row nor error"})
		return
	}
	row := *req.Row
	it.done = true
	run.set.Cells[it.idx].Data = &row
	c.results.Inc()
	c.checkpointLocked(run)
	c.finishLocked(run, it)
	doneCount, total := run.doneCount, len(run.set.Cells)
	cell := &run.set.Cells[it.idx]
	progress := run.grid.Progress
	c.mu.Unlock()

	if progress != nil {
		c.progressMu.Lock()
		progress(experiment.Progress{Done: doneCount, Total: total, Cell: cell})
		c.progressMu.Unlock()
	}
	writeJSON(w, http.StatusOK, okResponse{OK: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := StatusResponse{Closed: c.closed}
	if run := c.run; run != nil {
		resp.Active = true
		resp.Total = len(run.set.Cells)
		resp.Done = run.doneCount
		resp.Leased = len(run.leases)
		resp.Queued = len(run.queue)
		for _, it := range run.items {
			if it.failed {
				resp.Failed++
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkpoint persists the run's completed cells (when configured).
func (c *Coordinator) checkpoint(run *gridRun) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpointLocked(run)
}

// checkpointLocked writes the checkpoint atomically: marshal under the
// coordinator lock (cells mutate under it), write to a temp file, rename.
// Callers hold c.mu.
func (c *Coordinator) checkpointLocked(run *gridRun) {
	path := c.cfg.CheckpointPath
	if path == "" {
		return
	}
	b, err := run.set.CheckpointJSON()
	if err != nil {
		c.logf("dist: checkpoint marshal: %v", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		c.logf("dist: checkpoint write: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		c.logf("dist: checkpoint rename: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
