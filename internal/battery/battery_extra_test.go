package battery

import (
	"testing"

	"geovmp/internal/units"
)

func TestMaxDischargePowerZeroDuration(t *testing.T) {
	b := paperBank(t)
	if got := b.MaxDischargePower(0); got != 0 {
		t.Fatalf("zero-duration discharge power = %v", got)
	}
	if got := b.MaxDischargePower(-5); got != 0 {
		t.Fatalf("negative-duration discharge power = %v", got)
	}
}

func TestChargeDegenerateInputs(t *testing.T) {
	b := paperBank(t)
	if b.Charge(0, 60) != 0 || b.Charge(-100, 60) != 0 || b.Charge(100, 0) != 0 {
		t.Fatal("degenerate charge moved energy")
	}
	if b.Discharge(0, 60) != 0 || b.Discharge(100, -1) != 0 {
		t.Fatal("degenerate discharge moved energy")
	}
}

func TestInitialSoCClampedToDoDWindow(t *testing.T) {
	b, err := New(Config{Capacity: 100 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 0.1 is below the 0.5 floor: clamped up.
	if b.SoC() != 50*units.KilowattHour {
		t.Fatalf("initial SoC = %v, want clamped to the floor", b.SoC())
	}
	b2, err := New(Config{Capacity: 100 * units.KilowattHour, DoD: 0.5, InitialSoC: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b2.SoC() != 100*units.KilowattHour {
		t.Fatalf("over-unity SoC = %v, want clamped to capacity", b2.SoC())
	}
}

func TestUsableACReflectsEfficiency(t *testing.T) {
	b := paperBank(t)
	if b.UsableAC() >= b.Usable() {
		t.Fatal("AC-side usable energy must be below cell-side")
	}
}

func TestExplicitRateLimitsKept(t *testing.T) {
	b, err := New(Config{
		Capacity:    100 * units.KilowattHour,
		DoD:         0.5,
		InitialSoC:  1,
		ChargeLimit: 7 * units.Kilowatt,
		DischgLimit: 9 * units.Kilowatt,
		EffIn:       0.9,
		EffOut:      0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.Discharge(1*units.Megawatt, 3600)
	if out.KWh() > 9.01 {
		t.Fatalf("discharge %v kWh exceeds the 9 kW limit", out.KWh())
	}
}
