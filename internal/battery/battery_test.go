package battery

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/rng"
	"geovmp/internal/units"
)

func paperBank(t *testing.T) *Bank {
	t.Helper()
	b, err := New(Config{
		Capacity:   960 * units.KilowattHour,
		DoD:        0.5,
		InitialSoC: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewDefaults(t *testing.T) {
	b := paperBank(t)
	if b.Capacity() != 960*units.KilowattHour {
		t.Fatalf("capacity = %v", b.Capacity())
	}
	if b.SoC() != b.Capacity() {
		t.Fatalf("initial SoC = %v, want full", b.SoC())
	}
	// Usable = top half of the bank with DoD 0.5.
	if math.Abs(b.Usable().KWh()-480) > 1e-9 {
		t.Fatalf("usable = %v kWh, want 480", b.Usable().KWh())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(Config{Capacity: 1, DoD: 1.5}); err == nil {
		t.Error("DoD > 1 accepted")
	}
}

func TestDischargeRespectsDoD(t *testing.T) {
	b := paperBank(t)
	// Try to pull far more than the usable half.
	var delivered units.Energy
	for i := 0; i < 100; i++ {
		delivered += b.Discharge(10*units.Megawatt, 3600)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deliverable AC energy is usable * effOut = 480 kWh * 0.95.
	want := 480 * 0.95
	if math.Abs(delivered.KWh()-want) > 1 {
		t.Fatalf("delivered %v kWh, want ~%v", delivered.KWh(), want)
	}
	if b.Usable() > 1e-6 {
		t.Fatalf("usable after exhaustion = %v", b.Usable())
	}
}

func TestChargeRespectsCapacity(t *testing.T) {
	b, err := New(Config{Capacity: 100 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var consumed units.Energy
	for i := 0; i < 100; i++ {
		consumed += b.Charge(10*units.Megawatt, 3600)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Headroom() > 1e-6 {
		t.Fatalf("headroom after saturation = %v", b.Headroom())
	}
	// AC energy consumed = 50 kWh cell / 0.95.
	want := 50 / 0.95
	if math.Abs(consumed.KWh()-want) > 1 {
		t.Fatalf("consumed %v kWh, want ~%v", consumed.KWh(), want)
	}
}

func TestChargeRateLimit(t *testing.T) {
	b, err := New(Config{Capacity: 400 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.5, ChargeLimit: 10 * units.Kilowatt})
	if err != nil {
		t.Fatal(err)
	}
	got := b.Charge(1*units.Megawatt, 3600) // ask for 1 MW, limit 10 kW
	if math.Abs(got.KWh()-10) > 1e-6 {
		t.Fatalf("accepted %v kWh in 1 h at 10 kW limit, want 10", got.KWh())
	}
}

func TestDischargeRateLimit(t *testing.T) {
	b, err := New(Config{Capacity: 400 * units.KilowattHour, DoD: 0.5, InitialSoC: 1, DischgLimit: 20 * units.Kilowatt})
	if err != nil {
		t.Fatal(err)
	}
	got := b.Discharge(1*units.Megawatt, 1800)
	if math.Abs(got.KWh()-10) > 1e-6 {
		t.Fatalf("delivered %v kWh in 30 min at 20 kW limit, want 10", got.KWh())
	}
}

func TestRoundTripEfficiencyLoses(t *testing.T) {
	b, err := New(Config{Capacity: 100 * units.KilowattHour, DoD: 1, InitialSoC: 0})
	if err != nil {
		t.Fatal(err)
	}
	in := b.Charge(5*units.Kilowatt, 3600)
	out := b.Discharge(100*units.Kilowatt, 3600*10)
	if out >= in {
		t.Fatalf("round trip gained energy: in %v out %v", in, out)
	}
	ratio := float64(out) / float64(in)
	if math.Abs(ratio-0.95*0.95) > 0.01 {
		t.Fatalf("round trip efficiency = %v, want ~0.9", ratio)
	}
}

func TestZeroValueBankInert(t *testing.T) {
	var b Bank
	if b.Charge(1000, 60) != 0 || b.Discharge(1000, 60) != 0 {
		t.Fatal("zero-value bank moved energy")
	}
}

func TestMaxDischargePower(t *testing.T) {
	b := paperBank(t)
	p := b.MaxDischargePower(3600)
	// Rate limit C/4 = 240 kW binds before energy (480*0.95 kWh over 1 h).
	if math.Abs(p.KW()-240) > 1e-6 {
		t.Fatalf("max discharge = %v, want 240 kW", p.KW())
	}
	// Over a long window energy binds instead.
	p = b.MaxDischargePower(100 * 3600)
	want := 480.0 * 0.95 / 100
	if math.Abs(p.KW()-want) > 0.01 {
		t.Fatalf("max discharge over 100 h = %v kW, want %v", p.KW(), want)
	}
}

// TestInvariantUnderRandomOps drives a bank with random charge/discharge
// sequences and asserts SoC never leaves [floor, capacity].
func TestInvariantUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		b, err := New(Config{Capacity: 720 * units.KilowattHour, DoD: 0.5, InitialSoC: 0.75})
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			p := units.Power(src.Range(0, 500_000))
			dt := src.Range(1, 600)
			if src.Float64() < 0.5 {
				b.Charge(p, dt)
			} else {
				b.Discharge(p, dt)
			}
			if b.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEnergyConservation verifies cell-side accounting: energy in * effIn =
// SoC gain, SoC loss * effOut = energy out.
func TestEnergyConservation(t *testing.T) {
	b, err := New(Config{Capacity: 200 * units.KilowattHour, DoD: 1, InitialSoC: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before := b.SoC()
	in := b.Charge(10*units.Kilowatt, 1800)
	gained := b.SoC() - before
	if math.Abs(float64(gained)-float64(in)*0.95) > 1 {
		t.Fatalf("cell gained %v from AC %v, want x0.95", gained, in)
	}
	before = b.SoC()
	out := b.Discharge(10*units.Kilowatt, 1800)
	lost := before - b.SoC()
	if math.Abs(float64(out)-float64(lost)*0.95) > 1 {
		t.Fatalf("AC out %v from cell loss %v, want x0.95", out, lost)
	}
}
