// Package battery models the lithium-ion battery bank attached to each data
// center.
//
// The paper provisions 960/720/480 kWh banks with a 50% depth of discharge
// (DoD), "keeping the remaining capacity in case of outage": the green
// controller may cycle only the top half of the bank. We additionally model
// charge/discharge power limits (C-rate) and a round-trip efficiency,
// without which a battery simulation trivially overestimates arbitrage.
package battery

import (
	"fmt"

	"geovmp/internal/units"
)

// Bank is a stateful battery bank. Create with New; the zero value is an
// empty zero-capacity bank that accepts and delivers nothing.
type Bank struct {
	capacity  units.Energy // full capacity
	floor     units.Energy // minimum state of charge = capacity*(1-DoD)
	soc       units.Energy // current state of charge
	chargeMax units.Power  // maximum charging power (at the AC side)
	dischMax  units.Power  // maximum discharging power (at the AC side)
	effIn     float64      // AC->cell efficiency
	effOut    float64      // cell->AC efficiency
}

// Config parameterizes a bank.
type Config struct {
	Capacity    units.Energy
	DoD         float64     // usable fraction, e.g. 0.5 per the paper
	ChargeLimit units.Power // 0 means capacity/4h (C/4)
	DischgLimit units.Power // 0 means capacity/4h (C/4)
	EffIn       float64     // 0 means 0.95
	EffOut      float64     // 0 means 0.95
	InitialSoC  float64     // initial fraction of capacity; clamped to [1-DoD, 1]
}

// New builds a Bank from cfg.
func New(cfg Config) (*Bank, error) {
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("battery: negative capacity %v", cfg.Capacity)
	}
	if cfg.DoD < 0 || cfg.DoD > 1 {
		return nil, fmt.Errorf("battery: DoD %v out of [0,1]", cfg.DoD)
	}
	b := &Bank{
		capacity:  cfg.Capacity,
		floor:     units.Energy((1 - cfg.DoD) * float64(cfg.Capacity)),
		chargeMax: cfg.ChargeLimit,
		dischMax:  cfg.DischgLimit,
		effIn:     cfg.EffIn,
		effOut:    cfg.EffOut,
	}
	c4 := units.Power(float64(cfg.Capacity) / (4 * 3600))
	if b.chargeMax <= 0 {
		b.chargeMax = c4
	}
	if b.dischMax <= 0 {
		b.dischMax = c4
	}
	if b.effIn <= 0 || b.effIn > 1 {
		b.effIn = 0.95
	}
	if b.effOut <= 0 || b.effOut > 1 {
		b.effOut = 0.95
	}
	init := units.Clamp(cfg.InitialSoC, 1-cfg.DoD, 1)
	b.soc = units.Energy(init * float64(cfg.Capacity))
	return b, nil
}

// Capacity returns the bank's full capacity.
func (b *Bank) Capacity() units.Energy { return b.capacity }

// SoC returns the current state of charge.
func (b *Bank) SoC() units.Energy { return b.soc }

// Usable returns the energy that can still be drawn before hitting the DoD
// floor, measured at the cell (before output efficiency).
func (b *Bank) Usable() units.Energy {
	u := b.soc - b.floor
	if u < 0 {
		return 0
	}
	return u
}

// UsableAC returns the energy deliverable to the load after output
// efficiency. Placement heuristics size DC energy caps with this value.
func (b *Bank) UsableAC() units.Energy {
	return units.Energy(float64(b.Usable()) * b.effOut)
}

// Headroom returns how much cell energy the bank can still absorb.
func (b *Bank) Headroom() units.Energy {
	h := b.capacity - b.soc
	if h < 0 {
		return 0
	}
	return h
}

// Charge pushes AC power p into the bank for dt seconds and returns the AC
// energy actually consumed from the source (after clipping to the charge
// rate limit and remaining headroom).
func (b *Bank) Charge(p units.Power, dt float64) units.Energy {
	if p <= 0 || dt <= 0 || b.capacity == 0 {
		return 0
	}
	if p > b.chargeMax {
		p = b.chargeMax
	}
	acIn := p.ForDuration(dt)
	cellIn := units.Energy(float64(acIn) * b.effIn)
	if cellIn > b.Headroom() {
		cellIn = b.Headroom()
		acIn = units.Energy(float64(cellIn) / b.effIn)
	}
	b.soc += cellIn
	return acIn
}

// Discharge draws up to AC power p from the bank for dt seconds and returns
// the AC energy actually delivered (after the discharge rate limit, the DoD
// floor and output efficiency).
func (b *Bank) Discharge(p units.Power, dt float64) units.Energy {
	if p <= 0 || dt <= 0 || b.capacity == 0 {
		return 0
	}
	if p > b.dischMax {
		p = b.dischMax
	}
	acOut := p.ForDuration(dt)
	cellOut := units.Energy(float64(acOut) / b.effOut)
	if cellOut > b.Usable() {
		cellOut = b.Usable()
		acOut = units.Energy(float64(cellOut) * b.effOut)
	}
	b.soc -= cellOut
	return acOut
}

// MaxDischargePower returns the AC power the bank can sustain for dt seconds
// given its current state of charge.
func (b *Bank) MaxDischargePower(dt float64) units.Power {
	if dt <= 0 {
		return 0
	}
	byEnergy := units.Power(float64(b.Usable()) * b.effOut / dt)
	if byEnergy < b.dischMax {
		return byEnergy
	}
	return b.dischMax
}

// Validate checks the bank's invariants; tests call it after mutation
// sequences.
func (b *Bank) Validate() error {
	if b.soc < b.floor-1e-6 {
		return fmt.Errorf("battery: SoC %v below DoD floor %v", b.soc, b.floor)
	}
	if b.soc > b.capacity+1e-6 {
		return fmt.Errorf("battery: SoC %v above capacity %v", b.soc, b.capacity)
	}
	return nil
}
