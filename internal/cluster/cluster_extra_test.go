package cluster

import (
	"testing"

	"geovmp/internal/embed"
)

func TestStickBiasKeepsBoundaryItemHome(t *testing.T) {
	// An item exactly between two centroids: without stick it ties toward
	// the lower index; with stick toward its current cluster it must stay.
	items := []Item{{ID: 0, Pos: embed.Point{X: 0}, Load: 1, Current: 1}}
	cfg := Config{
		K:        2,
		Caps:     []float64{10, 10},
		Init:     []embed.Point{{X: -4}, {X: 4}},
		MaxIters: 1,
		Stick:    0.7,
	}
	res := Run(items, cfg)
	if res.Assign[0] != 1 {
		t.Fatalf("boundary item left its current cluster: %d", res.Assign[0])
	}
}

func TestStickDoesNotOverrideClearPreference(t *testing.T) {
	// An item far inside cluster 0's territory moves there even against a
	// moderate stay bias toward cluster 1.
	items := []Item{{ID: 0, Pos: embed.Point{X: -4}, Load: 1, Current: 1}}
	cfg := Config{
		K:        2,
		Caps:     []float64{10, 10},
		Init:     []embed.Point{{X: -4}, {X: 4}},
		MaxIters: 1,
		Stick:    0.7,
	}
	res := Run(items, cfg)
	if res.Assign[0] != 0 {
		t.Fatalf("clear geometric preference overridden by stickiness: %d", res.Assign[0])
	}
}

func TestStickDisabledValues(t *testing.T) {
	// Stick 0 and 1 both mean "no bias": the boundary item ties toward the
	// lower index regardless of Current.
	for _, stick := range []float64{0, 1} {
		items := []Item{{ID: 0, Pos: embed.Point{X: 0}, Load: 1, Current: 1}}
		cfg := Config{
			K:        2,
			Caps:     []float64{10, 10},
			Init:     []embed.Point{{X: -4}, {X: 4}},
			MaxIters: 1,
			Stick:    stick,
		}
		res := Run(items, cfg)
		if res.Assign[0] != 0 {
			t.Fatalf("stick=%v: expected unbiased tie toward 0, got %d", stick, res.Assign[0])
		}
	}
}

func TestNewItemsUnaffectedByStick(t *testing.T) {
	// Current = -1 (new VM) never matches a cluster index, so stick has no
	// effect on it.
	items := []Item{{ID: 0, Pos: embed.Point{X: 3.9}, Load: 1, Current: -1}}
	cfg := Config{
		K:        2,
		Caps:     []float64{10, 10},
		Init:     []embed.Point{{X: -4}, {X: 4}},
		MaxIters: 1,
		Stick:    0.3,
	}
	res := Run(items, cfg)
	if res.Assign[0] != 1 {
		t.Fatalf("new item not assigned by pure distance: %d", res.Assign[0])
	}
}

func TestIterationConvergesOnStableInput(t *testing.T) {
	items := twoBlobs()
	a := Run(items, Config{K: 2, Caps: []float64{100, 100}})
	// Feeding the converged centroids back must not change assignments.
	b := Run(items, Config{K: 2, Caps: []float64{100, 100}, Init: a.Centroids})
	for id, c := range a.Assign {
		if b.Assign[id] != c {
			t.Fatalf("assignment of %d changed on re-run from converged centroids", id)
		}
	}
	if b.Iters > a.Iters {
		t.Fatalf("re-run took more iterations (%d > %d)", b.Iters, a.Iters)
	}
}
