// Package cluster implements the second step of the paper's global phase:
// the modified k-means that groups embedded VM points into one cluster per
// data center, subject to each DC's energy capacity cap.
//
// The modifications to textbook k-means (Sect. IV-B.1, step 2):
//
//   - k is fixed to the number of DCs, and cluster c's total assigned VM
//     load (predicted slot energy, Joules) should respect Caps[c] — the cap
//     derived from battery state, renewable forecast and grid price.
//   - Initial centroids come from the previous slot's final positions
//     ("the initial centroid of each cluster is calculated based on the
//     last position of points available in that cluster in the previous
//     time slot"), which stabilizes assignments across slots and keeps
//     migration churn low.
//   - Network latency is deliberately ignored here; the migration revision
//     step (package migrate) enforces it.
//
// Capacity handling: points are assigned in descending load order, each to
// the nearest centroid with remaining cap; when no cluster has room the
// point overflows to the cluster with the largest remaining (least
// violated) cap. Caps are therefore soft targets exactly like the paper's
// "capacity cap", with feasibility restored by the later migration step and
// the local allocator.
package cluster

import (
	"cmp"
	"math"
	"slices"

	"geovmp/internal/embed"
)

// Item is one VM to cluster.
type Item struct {
	ID   int
	Pos  embed.Point
	Load float64 // predicted slot energy, Joules
	// Current is the cluster the item sits in today, or -1 when it has
	// none; Config.Stick discounts the distance to it.
	Current int
}

// Config tunes the clustering.
type Config struct {
	K        int           // number of clusters (DCs)
	Caps     []float64     // per-cluster capacity caps, Joules (len K)
	Init     []embed.Point // initial centroids (len K); zero value -> spread
	MaxIters int           // default 20
	Converge float64       // centroid movement threshold (default 1e-3)
	// Stick in (0, 1] multiplies an item's distance to its Current
	// cluster's centroid, making staying cheaper than moving — migration
	// hysteresis. 0 or 1 disables the bias.
	Stick float64
}

func (c *Config) applyDefaults() {
	if c.MaxIters == 0 {
		c.MaxIters = 20
	}
	if c.Converge == 0 {
		c.Converge = 1e-3
	}
}

// Result is the clustering outcome.
type Result struct {
	Assign    map[int]int   // item id -> cluster index
	Centroids []embed.Point // final centroids
	LoadPer   []float64     // total assigned load per cluster
	Iters     int
}

// DistToCentroid returns the distance from an item's position to cluster
// c's final centroid; the migration step sorts its queues with this.
func (r *Result) DistToCentroid(pos embed.Point, c int) float64 {
	return embed.Dist(pos, r.Centroids[c])
}

// Run clusters items into cfg.K capacity-capped clusters. It panics if K
// and the caps/init lengths disagree; callers own the configuration.
func Run(items []Item, cfg Config) Result {
	cfg.applyDefaults()
	if cfg.K <= 0 {
		panic("cluster: K must be positive")
	}
	if len(cfg.Caps) != cfg.K {
		panic("cluster: len(Caps) != K")
	}
	cents := make([]embed.Point, cfg.K)
	if len(cfg.Init) == cfg.K {
		copy(cents, cfg.Init)
	} else {
		// Spread centroids on a circle; deterministic and seed-free.
		for c := 0; c < cfg.K; c++ {
			ang := 2 * math.Pi * float64(c) / float64(cfg.K)
			cents[c] = embed.Point{X: 8 * math.Cos(ang), Y: 8 * math.Sin(ang)}
		}
	}

	// Assign in descending load order so the big consumers grab capacity
	// near their preferred centroid first (the standard capped-clustering
	// device; ties broken by id for determinism).
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := items[a], items[b]
		switch {
		case ia.Load > ib.Load:
			return -1
		case ia.Load < ib.Load:
			return 1
		}
		return cmp.Compare(ia.ID, ib.ID)
	})

	// Assignments are tracked in a slice keyed by item index during the
	// iterations; the id-keyed result map is materialized once at the end.
	assign := make([]int, len(items))
	res := Result{}
	var loads []float64
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iters = iter + 1
		loads = make([]float64, cfg.K)
		for _, idx := range order {
			it := items[idx]
			best := -1
			bestD := math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if loads[c]+it.Load > cfg.Caps[c] {
					continue
				}
				d := embed.Dist(it.Pos, cents[c])
				if cfg.Stick > 0 && cfg.Stick < 1 && c == it.Current {
					d *= cfg.Stick
				}
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if best < 0 {
				// Every cluster full: overflow to the most remaining cap.
				bestRem := math.Inf(-1)
				for c := 0; c < cfg.K; c++ {
					if rem := cfg.Caps[c] - loads[c]; rem > bestRem {
						bestRem = rem
						best = c
					}
				}
			}
			assign[idx] = best
			loads[best] += it.Load
		}

		// Recompute centroids; empty clusters keep their position.
		next := make([]embed.Point, cfg.K)
		counts := make([]int, cfg.K)
		for i, it := range items {
			c := assign[i]
			next[c].X += it.Pos.X
			next[c].Y += it.Pos.Y
			counts[c]++
		}
		var moved float64
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				next[c] = cents[c]
				continue
			}
			next[c].X /= float64(counts[c])
			next[c].Y /= float64(counts[c])
			moved += embed.Dist(next[c], cents[c])
		}
		cents = next
		if moved < cfg.Converge {
			break
		}
	}
	res.Assign = make(map[int]int, len(items))
	for i, it := range items {
		res.Assign[it.ID] = assign[i]
	}
	res.Centroids = cents
	res.LoadPer = loads
	return res
}

// CentroidsOf recomputes centroids for an externally-supplied assignment —
// the hook for carrying "last position of points available in that cluster"
// into the next slot's Config.Init.
func CentroidsOf(items []Item, assign map[int]int, k int, fallback []embed.Point) []embed.Point {
	cents := make([]embed.Point, k)
	counts := make([]int, k)
	for _, it := range items {
		c, ok := assign[it.ID]
		if !ok || c < 0 || c >= k {
			continue
		}
		cents[c].X += it.Pos.X
		cents[c].Y += it.Pos.Y
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			if len(fallback) == k {
				cents[c] = fallback[c]
			}
			continue
		}
		cents[c].X /= float64(counts[c])
		cents[c].Y /= float64(counts[c])
	}
	return cents
}
