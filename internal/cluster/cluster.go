// Package cluster implements the second step of the paper's global phase:
// the modified k-means that groups embedded VM points into one cluster per
// data center, subject to each DC's energy capacity cap.
//
// The modifications to textbook k-means (Sect. IV-B.1, step 2):
//
//   - k is fixed to the number of DCs, and cluster c's total assigned VM
//     load (predicted slot energy, Joules) should respect Caps[c] — the cap
//     derived from battery state, renewable forecast and grid price.
//   - Initial centroids come from the previous slot's final positions
//     ("the initial centroid of each cluster is calculated based on the
//     last position of points available in that cluster in the previous
//     time slot"), which stabilizes assignments across slots and keeps
//     migration churn low.
//   - Network latency is deliberately ignored here; the migration revision
//     step (package migrate) enforces it.
//
// Capacity handling: points are assigned in descending load order, each to
// the nearest centroid with remaining cap; when no cluster has room the
// point overflows to the cluster with the largest remaining (least
// violated) cap. Caps are therefore soft targets exactly like the paper's
// "capacity cap", with feasibility restored by the later migration step and
// the local allocator.
package cluster

import (
	"cmp"
	"math"
	"slices"
	"sync"

	"geovmp/internal/embed"
	"geovmp/internal/par"
)

// Item is one VM to cluster.
type Item struct {
	ID   int
	Pos  embed.Point
	Load float64 // predicted slot energy, Joules
	// Current is the cluster the item sits in today, or -1 when it has
	// none; Config.Stick discounts the distance to it.
	Current int
}

// Config tunes the clustering.
type Config struct {
	K        int           // number of clusters (DCs)
	Caps     []float64     // per-cluster capacity caps, Joules (len K)
	Init     []embed.Point // initial centroids (len K); zero value -> spread
	MaxIters int           // default 20
	Converge float64       // centroid movement threshold (default 1e-3)
	// Stick in (0, 1] multiplies an item's distance to its Current
	// cluster's centroid, making staying cheaper than moving — migration
	// hysteresis. 0 or 1 disables the bias.
	Stick float64
	// Workers optionally lends extra goroutines to the per-iteration
	// item-to-centroid distance computation (the sqrt-heavy part of the
	// assignment step). Distances are written disjointly per item, so
	// results are bit-identical at any worker count; the capacity-aware
	// assignment itself stays serial — it is order-dependent by design.
	Workers *par.Budget
}

func (c *Config) applyDefaults() {
	if c.MaxIters == 0 {
		c.MaxIters = 20
	}
	if c.Converge == 0 {
		c.Converge = 1e-3
	}
}

// Result is the clustering outcome.
type Result struct {
	Assign    map[int]int   // item id -> cluster index
	Centroids []embed.Point // final centroids
	LoadPer   []float64     // total assigned load per cluster
	Iters     int
}

// DistToCentroid returns the distance from an item's position to cluster
// c's final centroid; the migration step sorts its queues with this.
func (r *Result) DistToCentroid(pos embed.Point, c int) float64 {
	return embed.Dist(pos, r.Centroids[c])
}

// Run clusters items into cfg.K capacity-capped clusters. It panics if K
// and the caps/init lengths disagree; callers own the configuration.
func Run(items []Item, cfg Config) Result {
	cfg.applyDefaults()
	if cfg.K <= 0 {
		panic("cluster: K must be positive")
	}
	if len(cfg.Caps) != cfg.K {
		panic("cluster: len(Caps) != K")
	}
	cents := make([]embed.Point, cfg.K)
	if len(cfg.Init) == cfg.K {
		copy(cents, cfg.Init)
	} else {
		// Spread centroids on a circle; deterministic and seed-free.
		for c := 0; c < cfg.K; c++ {
			ang := 2 * math.Pi * float64(c) / float64(cfg.K)
			cents[c] = embed.Point{X: 8 * math.Cos(ang), Y: 8 * math.Sin(ang)}
		}
	}

	// Assign in descending load order so the big consumers grab capacity
	// near their preferred centroid first (the standard capped-clustering
	// device; ties broken by id for determinism).
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ia, ib := items[a], items[b]
		switch {
		case ia.Load > ib.Load:
			return -1
		case ia.Load < ib.Load:
			return 1
		}
		return cmp.Compare(ia.ID, ib.ID)
	})

	// Assignments are tracked in a slice keyed by item index during the
	// iterations; the id-keyed result map is materialized once at the end.
	assign := make([]int, len(items))
	// Per-iteration item-to-centroid distances, hoisted out of the serial
	// assignment loop: distances depend on positions and centroids but not
	// on the evolving loads, so they are computed in one sharded pass
	// (disjoint writes per item — bit-identical at any worker count) and
	// the order-dependent assignment below just reads them. The buffer is
	// pooled: Run executes once per slot per cell, and a fresh
	// items x K array every simulated hour would be a steady-state
	// allocation on the hot path.
	const distGrain = 64
	distBuf := distPool.Get().(*[]float64)
	defer distPool.Put(distBuf)
	if need := len(items) * cfg.K; cap(*distBuf) < need {
		*distBuf = make([]float64, need)
	} else {
		*distBuf = (*distBuf)[:need]
	}
	dists := *distBuf
	res := Result{}
	var loads []float64
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iters = iter + 1
		par.For(cfg.Workers, len(items), distGrain, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				pos := items[idx].Pos
				row := dists[idx*cfg.K : (idx+1)*cfg.K]
				for c := 0; c < cfg.K; c++ {
					row[c] = embed.Dist(pos, cents[c])
				}
			}
		})
		loads = make([]float64, cfg.K)
		for _, idx := range order {
			it := items[idx]
			best := -1
			bestD := math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if loads[c]+it.Load > cfg.Caps[c] {
					continue
				}
				d := dists[idx*cfg.K+c]
				if cfg.Stick > 0 && cfg.Stick < 1 && c == it.Current {
					d *= cfg.Stick
				}
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if best < 0 {
				// Every cluster full: overflow to the most remaining cap.
				bestRem := math.Inf(-1)
				for c := 0; c < cfg.K; c++ {
					if rem := cfg.Caps[c] - loads[c]; rem > bestRem {
						bestRem = rem
						best = c
					}
				}
			}
			assign[idx] = best
			loads[best] += it.Load
		}

		// Recompute centroids; empty clusters keep their position.
		next := make([]embed.Point, cfg.K)
		counts := make([]int, cfg.K)
		for i, it := range items {
			c := assign[i]
			next[c].X += it.Pos.X
			next[c].Y += it.Pos.Y
			counts[c]++
		}
		var moved float64
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				next[c] = cents[c]
				continue
			}
			next[c].X /= float64(counts[c])
			next[c].Y /= float64(counts[c])
			moved += embed.Dist(next[c], cents[c])
		}
		cents = next
		if moved < cfg.Converge {
			break
		}
	}
	res.Assign = make(map[int]int, len(items))
	for i, it := range items {
		res.Assign[it.ID] = assign[i]
	}
	res.Centroids = cents
	res.LoadPer = loads
	return res
}

// distPool recycles Run's per-call distance buffers across slots.
var distPool = sync.Pool{New: func() any { return new([]float64) }}

// CentroidsOf recomputes centroids for an externally-supplied assignment —
// the hook for carrying "last position of points available in that cluster"
// into the next slot's Config.Init.
func CentroidsOf(items []Item, assign map[int]int, k int, fallback []embed.Point) []embed.Point {
	cents := make([]embed.Point, k)
	counts := make([]int, k)
	for _, it := range items {
		c, ok := assign[it.ID]
		if !ok || c < 0 || c >= k {
			continue
		}
		cents[c].X += it.Pos.X
		cents[c].Y += it.Pos.Y
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			if len(fallback) == k {
				cents[c] = fallback[c]
			}
			continue
		}
		cents[c].X /= float64(counts[c])
		cents[c].Y /= float64(counts[c])
	}
	return cents
}
