package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"geovmp/internal/embed"
	"geovmp/internal/rng"
)

func twoBlobs() []Item {
	var items []Item
	id := 0
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: id, Pos: embed.Point{X: -10 + float64(i%3), Y: float64(i % 4)}, Load: 1})
		id++
	}
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: id, Pos: embed.Point{X: 10 + float64(i%3), Y: float64(i % 4)}, Load: 1})
		id++
	}
	return items
}

func TestSeparatesObviousBlobs(t *testing.T) {
	items := twoBlobs()
	res := Run(items, Config{K: 2, Caps: []float64{100, 100}})
	// All left-blob items must share a cluster, all right-blob items the other.
	left := res.Assign[0]
	for id := 0; id < 10; id++ {
		if res.Assign[id] != left {
			t.Fatalf("left item %d in cluster %d, want %d", id, res.Assign[id], left)
		}
	}
	right := res.Assign[10]
	if right == left {
		t.Fatal("blobs merged")
	}
	for id := 10; id < 20; id++ {
		if res.Assign[id] != right {
			t.Fatalf("right item %d in cluster %d, want %d", id, res.Assign[id], right)
		}
	}
}

func TestRespectsCapsWhenFeasible(t *testing.T) {
	// 20 unit loads, caps 12+12: no cluster may exceed its cap.
	items := twoBlobs()
	res := Run(items, Config{K: 2, Caps: []float64{12, 12}})
	for c, l := range res.LoadPer {
		if l > 12+1e-9 {
			t.Fatalf("cluster %d load %v exceeds cap 12", c, l)
		}
	}
	total := res.LoadPer[0] + res.LoadPer[1]
	if math.Abs(total-20) > 1e-9 {
		t.Fatalf("load lost: total %v", total)
	}
}

func TestCapForcesSplitOfOneBlob(t *testing.T) {
	// A single blob with caps that cannot hold it all in one cluster.
	var items []Item
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: i, Pos: embed.Point{X: float64(i) * 0.01}, Load: 1})
	}
	res := Run(items, Config{K: 2, Caps: []float64{6, 6}})
	if res.LoadPer[0] > 6+1e-9 || res.LoadPer[1] > 6+1e-9 {
		t.Fatalf("caps violated: %v", res.LoadPer)
	}
	if res.LoadPer[0] == 0 || res.LoadPer[1] == 0 {
		t.Fatal("blob not split despite caps")
	}
}

func TestOverflowGoesToLargestRemaining(t *testing.T) {
	// Total load 10 exceeds total cap 8: overflow must still assign all and
	// favor the larger cap.
	var items []Item
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: i, Pos: embed.Point{}, Load: 1})
	}
	res := Run(items, Config{K: 2, Caps: []float64{6, 2}})
	if len(res.Assign) != 10 {
		t.Fatalf("assigned %d of 10", len(res.Assign))
	}
	if res.LoadPer[0] < res.LoadPer[1] {
		t.Fatalf("overflow ignored cap sizes: %v", res.LoadPer)
	}
}

func TestInitialCentroidsRespected(t *testing.T) {
	// With no iterations to converge (MaxIters 1) and symmetric points, the
	// initial centroids decide assignment.
	items := []Item{
		{ID: 0, Pos: embed.Point{X: -1}, Load: 1},
		{ID: 1, Pos: embed.Point{X: 1}, Load: 1},
	}
	res := Run(items, Config{
		K:        2,
		Caps:     []float64{10, 10},
		Init:     []embed.Point{{X: -5}, {X: 5}},
		MaxIters: 1,
	})
	if res.Assign[0] != 0 || res.Assign[1] != 1 {
		t.Fatalf("assignments %v ignore initial centroids", res.Assign)
	}
}

func TestDeterministic(t *testing.T) {
	items := twoBlobs()
	run := func() Result {
		return Run(items, Config{K: 2, Caps: []float64{12, 12}})
	}
	a, b := run(), run()
	for id := range a.Assign {
		if a.Assign[id] != b.Assign[id] {
			t.Fatalf("assignment of %d diverged", id)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res := Run(nil, Config{K: 3, Caps: []float64{1, 1, 1}})
	if len(res.Assign) != 0 || len(res.Centroids) != 3 {
		t.Fatal("empty input mishandled")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{K: 0},
		{K: 2, Caps: []float64{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			Run(nil, cfg)
		}()
	}
}

func TestAllItemsAssignedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 5 + src.Intn(60)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:   i,
				Pos:  embed.Point{X: src.Range(-20, 20), Y: src.Range(-20, 20)},
				Load: src.Range(0.1, 5),
			}
		}
		k := 2 + src.Intn(3)
		caps := make([]float64, k)
		for c := range caps {
			caps[c] = src.Range(5, 60)
		}
		res := Run(items, Config{K: k, Caps: caps})
		if len(res.Assign) != n {
			return false
		}
		var totalIn, totalItems float64
		for _, l := range res.LoadPer {
			totalIn += l
		}
		for _, it := range items {
			totalItems += it.Load
			c := res.Assign[it.ID]
			if c < 0 || c >= k {
				return false
			}
		}
		return math.Abs(totalIn-totalItems) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCentroidsOf(t *testing.T) {
	items := []Item{
		{ID: 0, Pos: embed.Point{X: 0, Y: 0}},
		{ID: 1, Pos: embed.Point{X: 2, Y: 2}},
		{ID: 2, Pos: embed.Point{X: 10, Y: 0}},
	}
	assign := map[int]int{0: 0, 1: 0, 2: 1}
	cents := CentroidsOf(items, assign, 3, []embed.Point{{}, {}, {X: -7}})
	if cents[0] != (embed.Point{X: 1, Y: 1}) {
		t.Fatalf("centroid 0 = %v", cents[0])
	}
	if cents[1] != (embed.Point{X: 10, Y: 0}) {
		t.Fatalf("centroid 1 = %v", cents[1])
	}
	// Empty cluster keeps fallback.
	if cents[2] != (embed.Point{X: -7}) {
		t.Fatalf("centroid 2 = %v, want fallback", cents[2])
	}
}

func TestCentroidsOfIgnoresBadAssignments(t *testing.T) {
	items := []Item{{ID: 0, Pos: embed.Point{X: 5}}}
	cents := CentroidsOf(items, map[int]int{0: 99}, 2, nil)
	if cents[0] != (embed.Point{}) || cents[1] != (embed.Point{}) {
		t.Fatal("out-of-range assignment leaked into centroids")
	}
}

func TestDistToCentroid(t *testing.T) {
	res := Result{Centroids: []embed.Point{{X: 0}, {X: 10}}}
	if res.DistToCentroid(embed.Point{X: 3, Y: 4}, 0) != 5 {
		t.Fatal("distance wrong")
	}
}
