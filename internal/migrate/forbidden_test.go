package migrate

import (
	"math/rand"
	"reflect"
	"testing"

	"geovmp/internal/units"
)

func TestForbiddenDestinationsRejectMoves(t *testing.T) {
	// Two residents want DC2; it is forbidden, so both wishes are
	// rejected and the VMs stay put.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 2, Load: 5, Image: units.Gigabyte, Dist: 1},
		{ID: 2, Current: 1, Target: 2, Load: 5, Image: units.Gigabyte, Dist: 2},
	}
	cfg := cfg3([]float64{10, 10, 10}, []float64{5, 5, 0}, 1000, fakeNet{secPerGB: 1})
	cfg.Forbidden = []bool{false, false, true}
	res := Run(cands, cfg)
	if res.Placement[1] != 0 || res.Placement[2] != 1 {
		t.Fatalf("placement crossed into forbidden DC: %v", res.Placement)
	}
	if len(res.Moves) != 0 || res.Rejected != 2 {
		t.Fatalf("moves=%d rejected=%d, want 0/2", len(res.Moves), res.Rejected)
	}
}

func TestForbiddenSparesAllowedMoves(t *testing.T) {
	// Identical wish toward DC1 passes while DC2 stays closed.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 5, Image: units.Gigabyte, Dist: 1},
		{ID: 2, Current: 0, Target: 2, Load: 5, Image: units.Gigabyte, Dist: 1},
	}
	cfg := cfg3([]float64{10, 10, 10}, []float64{10, 0, 0}, 1000, fakeNet{secPerGB: 1})
	cfg.Forbidden = []bool{false, false, true}
	res := Run(cands, cfg)
	if res.Placement[1] != 1 {
		t.Fatalf("allowed move did not execute: %v", res.Placement)
	}
	if res.Placement[2] != 0 || res.Rejected != 1 {
		t.Fatalf("forbidden move executed: %v (rejected=%d)", res.Placement, res.Rejected)
	}
}

func TestForbiddenDoesNotGateNewVMs(t *testing.T) {
	// A new VM's target is taken unconditionally even when forbidden —
	// keeping arrivals off dead DCs is the caller's job.
	cands := []Candidate{{ID: 9, Current: -1, Target: 2, Load: 1}}
	cfg := cfg3([]float64{10, 10, 10}, []float64{0, 0, 0}, 1000, fakeNet{secPerGB: 1})
	cfg.Forbidden = []bool{false, false, true}
	res := Run(cands, cfg)
	if res.Placement[9] != 2 {
		t.Fatalf("new VM placement gated by Forbidden: %v", res.Placement)
	}
}

// TestMultiSourceDrainDeterminism pins the candidate-ordering guarantee the
// fault engine's evacuation relies on: when several over-cap sources drain
// at once (the multi-DC outage case), the executed plan is a pure function
// of the candidate *set* — any input permutation yields identical moves,
// placements and rejections.
func TestMultiSourceDrainDeterminism(t *testing.T) {
	// DCs 0 and 1 both over cap (draining), DCs 2..4 open. Ties in Dist
	// are deliberate: determinism must come from the id tie-break.
	base := []Candidate{
		{ID: 1, Current: 0, Target: 2, Load: 4, Image: units.Gigabyte, Dist: 3},
		{ID: 2, Current: 0, Target: 3, Load: 4, Image: units.Gigabyte, Dist: 3},
		{ID: 3, Current: 0, Target: 2, Load: 4, Image: units.Gigabyte, Dist: 1},
		{ID: 4, Current: 1, Target: 3, Load: 4, Image: units.Gigabyte, Dist: 2},
		{ID: 5, Current: 1, Target: 4, Load: 4, Image: units.Gigabyte, Dist: 2},
		{ID: 6, Current: 1, Target: 2, Load: 4, Image: units.Gigabyte, Dist: 5},
		{ID: 7, Current: 2, Target: 2, Load: 2},
		{ID: 8, Current: -1, Target: 4, Load: 2},
	}
	cfg := Config{
		NDC:        5,
		Caps:       []float64{1, 1, 20, 20, 20},
		Loads:      []float64{12, 12, 2, 0, 0},
		Constraint: 500,
		Net:        fakeNet{secPerGB: 1},
	}
	ref := Run(append([]Candidate(nil), base...), cfg)
	if len(ref.Moves) == 0 {
		t.Fatal("reference plan executed no moves; test is vacuous")
	}

	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		perm := make([]Candidate, len(base))
		for i, j := range r.Perm(len(base)) {
			perm[i] = base[j]
		}
		got := Run(perm, cfg)
		if !reflect.DeepEqual(got.Placement, ref.Placement) {
			t.Fatalf("trial %d: placement diverged:\n%v\nvs\n%v", trial, got.Placement, ref.Placement)
		}
		if !reflect.DeepEqual(got.Moves, ref.Moves) {
			t.Fatalf("trial %d: move order diverged:\n%v\nvs\n%v", trial, got.Moves, ref.Moves)
		}
		if got.Rejected != ref.Rejected {
			t.Fatalf("trial %d: rejected %d vs %d", trial, got.Rejected, ref.Rejected)
		}
	}
}
