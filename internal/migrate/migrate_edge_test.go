package migrate

import (
	"testing"

	"geovmp/internal/units"
)

// The revision's degenerate inputs: no candidates, an exhausted or negative
// move budget, and a constraint so tight every wish is rejected. These are
// exactly the states the rolling-horizon engine drives Run through at epoch
// edges, so they must stay well-defined.

func TestRunEmptyCandidates(t *testing.T) {
	res := Run(nil, cfg3([]float64{10, 10, 10}, []float64{0, 0, 0}, 72, fakeNet{secPerGB: 1}))
	if len(res.Placement) != 0 || len(res.Moves) != 0 || res.Rejected != 0 {
		t.Fatalf("empty revision produced placement=%v moves=%v rejected=%d",
			res.Placement, res.Moves, res.Rejected)
	}
	if len(res.LinkSeconds) != 3 || len(res.Loads) != 3 {
		t.Fatalf("result tables not sized to NDC: links=%d loads=%d",
			len(res.LinkSeconds), len(res.Loads))
	}
	for i := range res.Loads {
		if res.Loads[i] != 0 {
			t.Fatalf("loads mutated with no candidates: %v", res.Loads)
		}
	}
}

func TestRunNegativeMaxMovesRejectsEveryWish(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 1},
		{ID: 2, Current: 1, Target: 2, Load: 1, Image: 2 * units.Gigabyte, Dist: 2},
		{ID: 3, Current: -1, Target: 2, Load: 1, Image: 2 * units.Gigabyte},
	}
	cfg := cfg3([]float64{10, 10, 10}, []float64{1, 1, 0}, 72, fakeNet{secPerGB: 1})
	cfg.MaxMoves = -1
	res := Run(cands, cfg)
	if len(res.Moves) != 0 {
		t.Fatalf("zero budget executed %d moves", len(res.Moves))
	}
	if res.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (both movers)", res.Rejected)
	}
	if res.Placement[1] != 0 || res.Placement[2] != 1 {
		t.Fatalf("movers did not stay put: %v", res.Placement)
	}
	// New VMs are placed "without the consideration of the network latency
	// constraint" — and equally without consuming move budget.
	if res.Placement[3] != 2 {
		t.Fatalf("new VM placed at %d, want 2", res.Placement[3])
	}
}

func TestRunMaxMovesCapsExecution(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 1},
		{ID: 2, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 2},
		{ID: 3, Current: 0, Target: 2, Load: 1, Image: 2 * units.Gigabyte, Dist: 3},
	}
	cfg := cfg3([]float64{100, 100, 100}, []float64{3, 0, 0}, 1e9, fakeNet{secPerGB: 1})
	cfg.MaxMoves = 2
	res := Run(cands, cfg)
	if len(res.Moves) != 2 {
		t.Fatalf("executed %d moves, want 2", len(res.Moves))
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
	moved := 0
	for _, c := range cands {
		if res.Placement[c.ID] == c.Target {
			moved++
		} else if res.Placement[c.ID] != c.Current {
			t.Fatalf("candidate %d landed at %d, neither current nor target", c.ID, res.Placement[c.ID])
		}
	}
	if moved != 2 {
		t.Fatalf("placement shows %d movers, want 2", moved)
	}
}

func TestRunAllCandidatesLatencyRejected(t *testing.T) {
	// Constraint below any single transfer time: every wish is infeasible,
	// everyone stays, every link budget stays unburned.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 1, Image: 8 * units.Gigabyte, Dist: 1},
		{ID: 2, Current: 1, Target: 0, Load: 1, Image: 8 * units.Gigabyte, Dist: 1},
	}
	res := Run(cands, cfg3([]float64{100, 100, 100}, []float64{1, 1, 0}, 0.001, fakeNet{secPerGB: 10}))
	if len(res.Moves) != 0 || res.Rejected != 2 {
		t.Fatalf("moves=%d rejected=%d, want 0/2", len(res.Moves), res.Rejected)
	}
	if res.Placement[1] != 0 || res.Placement[2] != 1 {
		t.Fatalf("rejected movers displaced: %v", res.Placement)
	}
	for i := range res.LinkSeconds {
		for j, s := range res.LinkSeconds[i] {
			if s != 0 {
				t.Fatalf("rejected move burned link %d->%d budget: %v", i, j, s)
			}
		}
	}
}

func TestRunMaxMovesZeroIsUnlimited(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 1},
		{ID: 2, Current: 0, Target: 2, Load: 1, Image: 2 * units.Gigabyte, Dist: 2},
	}
	res := Run(cands, cfg3([]float64{100, 100, 100}, []float64{2, 0, 0}, 1e9, fakeNet{secPerGB: 1}))
	if len(res.Moves) != 2 || res.Rejected != 0 {
		t.Fatalf("moves=%d rejected=%d, want 2/0 (MaxMoves 0 means unlimited)", len(res.Moves), res.Rejected)
	}
}
