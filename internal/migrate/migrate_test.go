package migrate

import (
	"testing"

	"geovmp/internal/units"
)

// fakeNet returns a constant migration time per GB.
type fakeNet struct {
	secPerGB float64
}

func (f fakeNet) MigrationTime(i, j int, size units.DataSize) float64 {
	if i == j {
		return 0
	}
	return f.secPerGB * size.GB()
}

func cfg3(caps, loads []float64, constraint float64, net Network) Config {
	return Config{NDC: 3, Caps: caps, Loads: loads, Constraint: constraint, Net: net}
}

func TestNewVMsPlacedWithoutLatencyCheck(t *testing.T) {
	// Even with a zero constraint, new VMs (Current = -1) land on their
	// k-means target.
	cands := []Candidate{
		{ID: 1, Current: -1, Target: 2, Load: 5, Image: 8 * units.Gigabyte},
	}
	res := Run(cands, cfg3([]float64{10, 10, 10}, []float64{0, 0, 0}, 0, fakeNet{secPerGB: 100}))
	if res.Placement[1] != 2 {
		t.Fatalf("new VM placed at %d, want 2", res.Placement[1])
	}
	if len(res.Moves) != 0 {
		t.Fatal("new VM placement must not count as a migration")
	}
	if res.Loads[2] != 5 {
		t.Fatalf("target load = %v, want 5", res.Loads[2])
	}
}

func TestStayingVMsUntouched(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 0, Load: 3},
		{ID: 2, Current: 1, Target: 1, Load: 4},
	}
	res := Run(cands, cfg3([]float64{10, 10, 10}, []float64{3, 4, 0}, 72, fakeNet{secPerGB: 1}))
	if res.Placement[1] != 0 || res.Placement[2] != 1 {
		t.Fatalf("placements %v", res.Placement)
	}
	if len(res.Moves) != 0 {
		t.Fatal("unexpected migrations")
	}
}

func TestFeasibleMigrationExecutes(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 5, Image: 2 * units.Gigabyte, Dist: 1},
	}
	// 2 GB at 1 s/GB = 2 s < 72 s constraint.
	res := Run(cands, cfg3([]float64{10, 10, 10}, []float64{5, 0, 0}, 72, fakeNet{secPerGB: 1}))
	if res.Placement[1] != 1 {
		t.Fatalf("placement %d, want 1", res.Placement[1])
	}
	if len(res.Moves) != 1 {
		t.Fatalf("moves %v", res.Moves)
	}
	m := res.Moves[0]
	if m.From != 0 || m.To != 1 || m.Seconds != 2 {
		t.Fatalf("move %+v", m)
	}
	if res.Loads[0] != 0 || res.Loads[1] != 5 {
		t.Fatalf("loads %v", res.Loads)
	}
}

func TestInfeasibleMigrationStays(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 5, Image: 8 * units.Gigabyte, Dist: 1},
	}
	// 8 GB at 100 s/GB = 800 s > 72 s: rejected, VM stays.
	res := Run(cands, cfg3([]float64{10, 10, 10}, []float64{5, 0, 0}, 72, fakeNet{secPerGB: 100}))
	if res.Placement[1] != 0 {
		t.Fatalf("placement %d, want to stay at 0", res.Placement[1])
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
	if len(res.Moves) != 0 {
		t.Fatal("infeasible move executed")
	}
}

func TestLinkBudgetExhausts(t *testing.T) {
	// Ten 2 GB VMs over a 10 s/GB network: each takes 20 s; a 72 s budget
	// fits only 3 on the 0->1 pair.
	var cands []Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, Candidate{
			ID: i, Current: 0, Target: 1, Load: 1,
			Image: 2 * units.Gigabyte, Dist: float64(i),
		})
	}
	res := Run(cands, cfg3([]float64{100, 100, 100}, []float64{10, 0, 0}, 72, fakeNet{secPerGB: 10}))
	if len(res.Moves) != 3 {
		t.Fatalf("executed %d migrations, want 3 within the 72 s budget", len(res.Moves))
	}
	if res.LinkSeconds[0][1] > 72 {
		t.Fatalf("link budget exceeded: %v", res.LinkSeconds[0][1])
	}
	moved := 0
	for _, c := range cands {
		if res.Placement[c.ID] == 1 {
			moved++
		}
	}
	if moved != 3 {
		t.Fatalf("placements show %d moved", moved)
	}
}

func TestUnderCapDCAdmitsClosestFirst(t *testing.T) {
	// DC1 under cap; two candidates want in, the closer (smaller Dist) must
	// be admitted first and consume budget first.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 5},
		{ID: 2, Current: 0, Target: 1, Load: 1, Image: 2 * units.Gigabyte, Dist: 1},
	}
	// Budget allows exactly one 2 GB move at 30 s/GB (60 s < 72, 120 > 72).
	res := Run(cands, cfg3([]float64{10, 10, 10}, []float64{2, 0, 0}, 72, fakeNet{secPerGB: 30}))
	if len(res.Moves) != 1 {
		t.Fatalf("moves = %d, want 1", len(res.Moves))
	}
	if res.Moves[0].ID != 2 {
		t.Fatalf("moved %d first, want the closer candidate 2", res.Moves[0].ID)
	}
	if res.Placement[1] != 0 || res.Placement[2] != 1 {
		t.Fatalf("placements %v", res.Placement)
	}
}

func TestOverCapDCEvictsFarthestFirst(t *testing.T) {
	// DC0 over cap: eviction must pick the candidate farthest from DC0's
	// own placement preference (largest Dist first in Qout ordering).
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 4, Image: 2 * units.Gigabyte, Dist: 9},
		{ID: 2, Current: 0, Target: 1, Load: 4, Image: 2 * units.Gigabyte, Dist: 2},
	}
	// DC0 load 8 > cap 5: must evict; after one eviction load 4 < 5 stops.
	res := Run(cands, cfg3([]float64{5, 20, 20}, []float64{8, 0, 0}, 720, fakeNet{secPerGB: 1}))
	if len(res.Moves) == 0 {
		t.Fatal("no eviction happened")
	}
	if res.Moves[0].ID != 1 {
		t.Fatalf("evicted %d first, want farthest candidate 1", res.Moves[0].ID)
	}
}

func TestEveryCandidateGetsPlacement(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 40; i++ {
		cur := i % 3
		if i%7 == 0 {
			cur = -1
		}
		cands = append(cands, Candidate{
			ID: i, Current: cur, Target: (i + 1) % 3, Load: 1,
			Image: 4 * units.Gigabyte, Dist: float64(i % 11),
		})
	}
	res := Run(cands, cfg3([]float64{15, 15, 15}, []float64{12, 14, 9}, 72, fakeNet{secPerGB: 2}))
	for _, c := range cands {
		dc, ok := res.Placement[c.ID]
		if !ok {
			t.Fatalf("candidate %d missing placement", c.ID)
		}
		if dc < 0 || dc >= 3 {
			t.Fatalf("candidate %d at invalid DC %d", c.ID, dc)
		}
		if c.Current >= 0 && dc != c.Current && dc != c.Target {
			t.Fatalf("candidate %d at %d, neither current %d nor target %d", c.ID, dc, c.Current, c.Target)
		}
	}
}

func TestLoadConservation(t *testing.T) {
	var cands []Candidate
	var total float64
	for i := 0; i < 25; i++ {
		load := float64(1 + i%4)
		cur := i % 3
		if i%9 == 0 {
			cur = -1
		}
		total += load
		cands = append(cands, Candidate{
			ID: i, Current: cur, Target: (i + 2) % 3, Load: load,
			Image: 2 * units.Gigabyte, Dist: float64(i),
		})
	}
	loads := []float64{0, 0, 0}
	for _, c := range cands {
		if c.Current >= 0 {
			loads[c.Current] += c.Load
		}
	}
	res := Run(cands, cfg3([]float64{20, 20, 20}, loads, 72, fakeNet{secPerGB: 1}))
	var after float64
	for _, l := range res.Loads {
		after += l
	}
	if diff := after - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("load not conserved: %v vs %v", after, total)
	}
}

func TestDeterministic(t *testing.T) {
	build := func() []Candidate {
		var cands []Candidate
		for i := 0; i < 30; i++ {
			cands = append(cands, Candidate{
				ID: i, Current: i % 3, Target: (i + 1) % 3, Load: float64(i%5) + 1,
				Image: 4 * units.Gigabyte, Dist: float64((i * 7) % 13),
			})
		}
		return cands
	}
	run := func() Result {
		return Run(build(), cfg3([]float64{25, 25, 25}, []float64{30, 35, 25}, 72, fakeNet{secPerGB: 3}))
	}
	a, b := run(), run()
	if len(a.Moves) != len(b.Moves) {
		t.Fatal("move counts diverged")
	}
	for id, dc := range a.Placement {
		if b.Placement[id] != dc {
			t.Fatalf("placement of %d diverged", id)
		}
	}
}

func TestNoCandidates(t *testing.T) {
	res := Run(nil, cfg3([]float64{1, 1, 1}, []float64{0, 0, 0}, 72, fakeNet{}))
	if len(res.Placement) != 0 || len(res.Moves) != 0 {
		t.Fatal("empty input mishandled")
	}
}
