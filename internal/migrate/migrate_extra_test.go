package migrate

import (
	"testing"

	"geovmp/internal/units"
)

func TestWalkFollowsEvictedVM(t *testing.T) {
	// Algorithm 2 line 20: after an over-cap DC evicts a VM, the walk moves
	// to the destination DC. Construct: DC0 over cap evicts to DC1; DC1 is
	// then over cap too and must evict to DC2 *before* the round-robin
	// would naturally reach it.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 6, Image: 2 * units.Gigabyte, Dist: 5},
		{ID: 2, Current: 1, Target: 2, Load: 6, Image: 2 * units.Gigabyte, Dist: 5},
	}
	res := Run(cands, Config{
		NDC:        3,
		Caps:       []float64{5, 5, 20},
		Loads:      []float64{6, 6, 0},
		Constraint: 720,
		Net:        fakeNet{secPerGB: 1},
	})
	if len(res.Moves) != 2 {
		t.Fatalf("moves = %d, want the chained evictions", len(res.Moves))
	}
	if res.Moves[0].ID != 1 || res.Moves[1].ID != 2 {
		t.Fatalf("eviction chain order wrong: %+v", res.Moves)
	}
	if res.Placement[1] != 1 || res.Placement[2] != 2 {
		t.Fatalf("placements %v", res.Placement)
	}
}

func TestRejectedEvictionStaysAndQueueAdvances(t *testing.T) {
	// An infeasible eviction is erased (lines 21-23) and the next candidate
	// is considered.
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 4, Image: 8 * units.Gigabyte, Dist: 9}, // too big to move
		{ID: 2, Current: 0, Target: 1, Load: 4, Image: 2 * units.Gigabyte, Dist: 2},
	}
	// 8 GB at 30 s/GB = 240 s > 72; 2 GB = 60 s < 72.
	res := Run(cands, Config{
		NDC:        3,
		Caps:       []float64{5, 20, 20},
		Loads:      []float64{8, 0, 0},
		Constraint: 72,
		Net:        fakeNet{secPerGB: 30},
	})
	if res.Placement[1] != 0 {
		t.Fatal("infeasible eviction moved")
	}
	if res.Placement[2] != 1 {
		t.Fatal("feasible follow-up not executed")
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
}

func TestZeroLoadCandidates(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Current: 0, Target: 1, Load: 0, Image: 2 * units.Gigabyte, Dist: 1},
	}
	res := Run(cands, cfg3([]float64{1, 1, 1}, []float64{0, 0, 0}, 72, fakeNet{secPerGB: 1}))
	if _, ok := res.Placement[1]; !ok {
		t.Fatal("zero-load candidate lost")
	}
}

func TestManyDCs(t *testing.T) {
	// The walk must terminate and place everyone with 6 DCs.
	var cands []Candidate
	for i := 0; i < 60; i++ {
		cands = append(cands, Candidate{
			ID: i, Current: i % 6, Target: (i + 3) % 6, Load: 1,
			Image: 2 * units.Gigabyte, Dist: float64(i % 7),
		})
	}
	loads := make([]float64, 6)
	caps := make([]float64, 6)
	for i := range caps {
		caps[i] = 12
	}
	for _, c := range cands {
		loads[c.Current] += c.Load
	}
	res := Run(cands, Config{NDC: 6, Caps: caps, Loads: loads, Constraint: 72, Net: fakeNet{secPerGB: 1}})
	if len(res.Placement) != 60 {
		t.Fatalf("placed %d of 60", len(res.Placement))
	}
}

func TestLinkSecondsMatchesMoves(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, Candidate{
			ID: i, Current: 0, Target: 1, Load: 1,
			Image: 2 * units.Gigabyte, Dist: float64(i),
		})
	}
	res := Run(cands, cfg3([]float64{100, 100, 100}, []float64{10, 0, 0}, 72, fakeNet{secPerGB: 5}))
	var total float64
	for _, m := range res.Moves {
		total += m.Seconds
	}
	if total != res.LinkSeconds[0][1] {
		t.Fatalf("link accounting %v != move sum %v", res.LinkSeconds[0][1], total)
	}
}
