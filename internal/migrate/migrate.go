// Package migrate implements Algorithm 2 of the paper: revising the
// modified k-means output into an executable migration plan under the hard
// inter-DC migration latency constraint.
//
// The k-means target assignment induces, per DC, an outgoing queue (VMs the
// clustering wants to move away, sorted by descending distance from the
// DC's centroid — evict the worst-placed first) and an incoming queue (VMs
// it wants to receive, ascending — admit the best-placed first). The
// algorithm walks the DCs: an under-cap DC admits from its incoming queue,
// an over-cap DC evicts from its outgoing queue and the walk follows the
// evicted VM to its destination. A migration executes only when the VM's
// image can cross the network within the latency constraint (the paper's
// QoS 98%: under 2% of the slot), accounting for the budget already
// consumed on that link pair this slot. VMs that cannot move stay where
// they were; brand-new VMs take their k-means DC unconditionally ("without
// the consideration of the network latency constraint").
package migrate

import (
	"sort"

	"geovmp/internal/units"
)

// Candidate is one VM in the revision.
type Candidate struct {
	ID      int
	Current int            // current DC, or -1 for a newly arrived VM
	Target  int            // DC chosen by the clustering step
	Load    float64        // predicted slot energy, Joules (cap accounting)
	Image   units.DataSize // migration image size
	Dist    float64        // distance to Target's centroid (queue ordering)
}

// Network abstracts the latency model; satisfied by *network.State.
type Network interface {
	// MigrationTime returns the seconds needed to move an image from DC i
	// to DC j under current link conditions.
	MigrationTime(i, j int, size units.DataSize) float64
}

// Config parameterizes the revision.
type Config struct {
	NDC        int
	Caps       []float64 // per-DC energy caps, Joules
	Loads      []float64 // per-DC load *before* any migration, Joules (VMs currently there)
	Constraint float64   // latency constraint per link pair, seconds (e.g. 72 = 2% of a slot)
	Net        Network
	// MaxMoves caps the number of migrations the revision may execute: 0
	// means unlimited (the paper's Algorithm 2), a positive value stops
	// executing once that many moves are planned (later wishes are
	// rejected), and a negative value rejects every wish — the
	// rolling-horizon engine's "budget exhausted" state.
	MaxMoves int
	// Forbidden marks DCs no move may target (nil allows all): the fault
	// engine's evacuation path forbids the dead DCs. A wish whose Target
	// is forbidden is rejected; a new VM (Current < 0) still takes its
	// target unconditionally — keeping arrivals off dead DCs is the
	// caller's job, since it decided the targets.
	Forbidden []bool
}

// Move records one executed migration.
type Move struct {
	ID       int
	From, To int
	Image    units.DataSize
	Seconds  float64
}

// Result is the plan after revision.
type Result struct {
	// Placement maps every candidate id to its final DC.
	Placement map[int]int
	Moves     []Move
	// Rejected counts migration wishes dropped for latency or budget.
	Rejected int
	// LinkSeconds[i][j] is the migration time consumed on the i->j pair.
	LinkSeconds [][]float64
	// Loads is the per-DC load after the revision.
	Loads []float64
}

// queue entries, kept small for cache friendliness.
type qent struct {
	id   int
	dist float64
}

// Run executes Algorithm 2 over the candidates.
func Run(cands []Candidate, cfg Config) Result {
	res := Result{
		Placement:   make(map[int]int, len(cands)),
		LinkSeconds: make([][]float64, cfg.NDC),
	}
	for i := range res.LinkSeconds {
		res.LinkSeconds[i] = make([]float64, cfg.NDC)
	}
	loads := append([]float64(nil), cfg.Loads...)

	byID := make(map[int]*Candidate, len(cands))
	qin := make([][]qent, cfg.NDC)  // per destination DC
	qout := make([][]qent, cfg.NDC) // per source DC
	for i := range cands {
		c := &cands[i]
		byID[c.ID] = c
		switch {
		case c.Current < 0:
			// New VM: placed at its k-means DC without latency checks.
			res.Placement[c.ID] = c.Target
			loads[c.Target] += c.Load
		case c.Target == c.Current:
			res.Placement[c.ID] = c.Current
		default:
			// Wants to move: provisionally stays, queued for revision.
			res.Placement[c.ID] = c.Current
			qin[c.Target] = append(qin[c.Target], qent{id: c.ID, dist: c.Dist})
			qout[c.Current] = append(qout[c.Current], qent{id: c.ID, dist: c.Dist})
		}
	}
	// Qin ascending by distance to the destination centroid (admit best
	// fits first), Qout descending (evict worst fits first). Ties by id for
	// determinism.
	for d := 0; d < cfg.NDC; d++ {
		in, out := qin[d], qout[d]
		sort.Slice(in, func(a, b int) bool {
			if in[a].dist != in[b].dist {
				return in[a].dist < in[b].dist
			}
			return in[a].id < in[b].id
		})
		sort.Slice(out, func(a, b int) bool {
			if out[a].dist != out[b].dist {
				return out[a].dist > out[b].dist
			}
			return out[a].id < out[b].id
		})
	}

	dropped := make(map[int]bool) // ids erased from queues
	pop := func(q []qent) (int, []qent) {
		for len(q) > 0 {
			head := q[0]
			q = q[1:]
			if !dropped[head.id] {
				return head.id, q
			}
		}
		return -1, q
	}
	empty := func() bool {
		for d := 0; d < cfg.NDC; d++ {
			for _, e := range qin[d] {
				if !dropped[e.id] {
					return false
				}
			}
		}
		return true
	}
	// feasible checks the move-count budget and the latency constraint for
	// moving c from->to, given the budget already burned on that link pair.
	feasible := func(c *Candidate, from, to int) (float64, bool) {
		if cfg.MaxMoves < 0 || (cfg.MaxMoves > 0 && len(res.Moves) >= cfg.MaxMoves) {
			return 0, false
		}
		if cfg.Forbidden != nil && to >= 0 && to < len(cfg.Forbidden) && cfg.Forbidden[to] {
			return 0, false
		}
		t := cfg.Net.MigrationTime(from, to, c.Image)
		if res.LinkSeconds[from][to]+t < cfg.Constraint {
			return t, true
		}
		return t, false
	}
	execute := func(c *Candidate, from, to int, t float64) {
		res.Placement[c.ID] = to
		res.Moves = append(res.Moves, Move{ID: c.ID, From: from, To: to, Image: c.Image, Seconds: t})
		res.LinkSeconds[from][to] += t
		loads[from] -= c.Load
		loads[to] += c.Load
	}

	// Main walk. A safety bound of 4x the queue population guards against
	// cycling in degenerate configurations (it is never hit in tests).
	i := 0
	maxSteps := 4 * (len(cands) + cfg.NDC)
	for step := 0; step < maxSteps && !empty(); step++ {
		if loads[i] < cfg.Caps[i] {
			var id int
			id, qin[i] = pop(qin[i])
			if id < 0 {
				i = (i + 1) % cfg.NDC
				continue
			}
			c := byID[id]
			from := c.Current
			if t, ok := feasible(c, from, i); ok {
				execute(c, from, i, t)
			} else {
				res.Rejected++
			}
			dropped[id] = true
		} else {
			var id int
			id, qout[i] = pop(qout[i])
			if id < 0 {
				i = (i + 1) % cfg.NDC
				continue
			}
			c := byID[id]
			to := c.Target
			if t, ok := feasible(c, i, to); ok {
				execute(c, i, to, t)
				dropped[id] = true
				i = to // follow the evicted VM, per Algorithm 2 line 20
			} else {
				res.Rejected++
				dropped[id] = true
			}
		}
	}
	res.Loads = loads
	return res
}
