package config

import (
	"math"
	"testing"

	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

func TestBuildPaperScale(t *testing.T) {
	sc, err := Build(Spec{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I numbers.
	wantServers := []int{1500, 1000, 500}
	wantPVkW := []float64{150, 100, 50}
	wantBattKWh := []float64{960, 720, 480}
	for i, d := range sc.Fleet {
		if d.Servers != wantServers[i] {
			t.Errorf("DC%d servers = %d, want %d", i+1, d.Servers, wantServers[i])
		}
		if math.Abs(d.Plant.Peak.KW()-wantPVkW[i]) > 1e-9 {
			t.Errorf("DC%d PV = %v kW, want %v", i+1, d.Plant.Peak.KW(), wantPVkW[i])
		}
		if math.Abs(d.Bank.Capacity().KWh()-wantBattKWh[i]) > 1e-9 {
			t.Errorf("DC%d battery = %v kWh, want %v", i+1, d.Bank.Capacity().KWh(), wantBattKWh[i])
		}
	}
	if sc.Horizon != timeutil.Week() {
		t.Fatalf("default horizon = %v, want a week", sc.Horizon)
	}
	if sc.QoS != 0.98 {
		t.Fatalf("QoS = %v, want 0.98", sc.QoS)
	}
}

func TestBuildScaling(t *testing.T) {
	sc, err := Build(Spec{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet[0].Servers != 150 || sc.Fleet[1].Servers != 100 || sc.Fleet[2].Servers != 50 {
		t.Fatalf("scaled servers wrong: %d %d %d",
			sc.Fleet[0].Servers, sc.Fleet[1].Servers, sc.Fleet[2].Servers)
	}
	if math.Abs(sc.Fleet[0].Plant.Peak.KW()-15) > 1e-9 {
		t.Fatalf("scaled PV = %v", sc.Fleet[0].Plant.Peak.KW())
	}
}

func TestBuildWorkloadSizing(t *testing.T) {
	sc, err := Build(Spec{Scale: 0.02, Seed: 3, VMsPerServer: 4, Horizon: timeutil.Days(1)})
	if err != nil {
		t.Fatal(err)
	}
	total := sc.Fleet.TotalServers()
	got := len(sc.Workload.ActiveVMs(0))
	if got != 4*total {
		t.Fatalf("initial VMs = %d, want %d", got, 4*total)
	}
}

func TestBatteryScale(t *testing.T) {
	sc, err := Build(Spec{Scale: 0.1, Seed: 1, BatteryScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.Fleet[0].Bank.Capacity().KWh()-192) > 1e-9 {
		t.Fatalf("battery scale ignored: %v kWh", sc.Fleet[0].Bank.Capacity().KWh())
	}
	tiny, err := Build(Spec{Scale: 0.1, Seed: 1, BatteryScale: BatteryZero})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Fleet[0].Bank.Capacity() > units.Energy(1*units.KilowattHour) {
		t.Fatalf("BatteryZero not tiny: %v", tiny.Fleet[0].Bank.Capacity())
	}
}

func TestForecastKinds(t *testing.T) {
	wants := map[ForecastKind]string{
		ForecastWCMA:      "wcma",
		ForecastEWMA:      "ewma",
		ForecastLastValue: "last-value",
		ForecastOracle:    "oracle",
	}
	for kind, want := range wants {
		sc, err := Build(Spec{Scale: 0.01, Seed: 1, Forecast: kind})
		if err != nil {
			t.Fatal(err)
		}
		if got := sc.Fleet[0].Forecast.Name(); got != want {
			t.Errorf("kind %d: forecaster %q, want %q", kind, got, want)
		}
	}
}

func TestIndependentState(t *testing.T) {
	a, err := Build(Spec{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Spec{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Draining a's battery must not affect b's.
	a.Fleet[0].Bank.Discharge(units.Power(1e9), 3600)
	if a.Fleet[0].Bank.SoC() == b.Fleet[0].Bank.SoC() {
		t.Fatal("scenarios share battery state")
	}
}

func TestIdenticalWorkloads(t *testing.T) {
	a, _ := Build(Spec{Scale: 0.01, Seed: 9})
	b, _ := Build(Spec{Scale: 0.01, Seed: 9})
	if a.Workload.NumVMs() != b.Workload.NumVMs() {
		t.Fatal("same-seed workloads differ")
	}
	for st := 0; st < 100; st++ {
		if a.Workload.Util(0, timeutil.Step(st)) != b.Workload.Util(0, timeutil.Step(st)) {
			t.Fatal("same-seed traces differ")
		}
	}
}

func TestMinimumServers(t *testing.T) {
	sc, err := Build(Spec{Scale: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sc.Fleet {
		if d.Servers < 1 {
			t.Fatalf("%s has %d servers", d.Name, d.Servers)
		}
	}
}

func TestTraceSourceSpecValidation(t *testing.T) {
	if _, err := Build(Spec{Scale: 0.01, TraceVMsFile: "vms.csv"}); err == nil {
		t.Fatal("TraceVMsFile without TraceCPUFile accepted")
	}
	if _, err := Build(Spec{Scale: 0.01, TraceCPUFile: "cpu.csv"}); err == nil {
		t.Fatal("TraceCPUFile without TraceVMsFile accepted")
	}
	if _, err := Build(Spec{Scale: 0.01, ReplayDir: "d", TraceVMsFile: "v", TraceCPUFile: "c"}); err == nil {
		t.Fatal("ReplayDir combined with a raw trace accepted")
	}
	if _, err := Build(Spec{Scale: 0.01, ReplayDir: "/nonexistent-replay-dir"}); err == nil {
		t.Fatal("missing replay directory accepted")
	}
}

func TestReplayDirSpecDrivesWorkload(t *testing.T) {
	src, err := Build(Spec{Scale: 0.01, Seed: 4, Horizon: timeutil.Hours(4), FineStepSec: 300})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := trace.ExportReplay(src.Workload, dir, 4, 12); err != nil {
		t.Fatal(err)
	}
	sc, err := Build(NewSpec("replayed",
		WithScale(0.01), WithSeed(4), WithHorizon(timeutil.Hours(4)),
		WithFineStep(300), WithReplayDir(dir)))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workload.NumVMs() != src.Workload.NumVMs() {
		t.Fatalf("replayed fleet %d VMs, source %d", sc.Workload.NumVMs(), src.Workload.NumVMs())
	}
}

func TestFineBudgetSpecReachesCompile(t *testing.T) {
	spec := NewSpec("budgeted",
		WithScale(0.01), WithSeed(2), WithHorizon(timeutil.Hours(4)),
		WithFineStep(300), WithFineTableBudget(1), WithChunkSlots(2))
	c, err := CompileWorkload(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FineChunked() {
		t.Fatal("1-byte budget did not chunk the fine table")
	}
	if got := c.FineChunkSlots(); got != 2 {
		t.Fatalf("pinned chunk width = %d, want 2", got)
	}
}
