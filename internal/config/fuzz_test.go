package config

import (
	"math"
	"testing"

	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

// FuzzSpecValidate drives Build through adversarial Spec field values and
// pins the validation contract: Validate and Build agree (a spec Validate
// accepts must Build, one it rejects must not), and neither ever panics.
// The harness clamps the *sizes* (horizon, fleet scale, workload density)
// so accepted specs stay test-sized, but passes the shapes — negatives,
// NaN, Inf, mismatched row counts — straight through.
//
// CI runs this as a short -fuzztime smoke job; `go test` replays the seed
// corpus as a regular regression test.
func FuzzSpecValidate(f *testing.F) {
	f.Add(0.02, uint64(42), 8, 7.0, 300.0, 0.98, 4, 0.3, 10, 512.0, 0.5, 0.4, 0.2, 4)
	f.Add(0.01, uint64(7), 2, 1.0, 600.0, -1.0, 0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0)
	f.Add(-1.0, uint64(0), -3, math.NaN(), 0.0, 2.0, -2, math.Inf(1), -5, -1.0, -1.0, -0.5, 1.0, 2)
	f.Add(0.015, uint64(3), 5, 2.0, 450.0, 0.9, 3, 0.99, 1, 64.0, 0.1, 0.25, 0.25, 3)
	f.Fuzz(func(t *testing.T, scale float64, seed uint64, hours int, vmsPerServer,
		fineStep, qos float64, epochs int, wave float64, maxMoves int,
		energyPerGB, downtime, wA, wB float64, mixRows int) {
		// Size clamps only — keep every accepted spec cheap to Build.
		if scale > 0.03 {
			scale = math.Mod(scale, 0.03)
		}
		if hours > 12 {
			hours = hours % 12
		}
		if vmsPerServer > 8 {
			vmsPerServer = math.Mod(vmsPerServer, 8)
		}
		if epochs > 16 {
			epochs = epochs % 16
		}
		if mixRows > 8 {
			mixRows = mixRows % 8
		}
		spec := Spec{
			Scale:        scale,
			Seed:         seed,
			Horizon:      timeutil.Hours(hours),
			VMsPerServer: vmsPerServer,
			FineStepSec:  fineStep,
			QoS:          qos,
			Epochs:       epochs,
			ArrivalWave:  wave,
			Migration: sim.MigrationBudget{
				MaxMovesPerEpoch: maxMoves,
				EnergyPerGB:      energyPerGB,
				DowntimeSec:      downtime,
			},
		}
		if mixRows > 0 {
			spec.EpochClassWeights = make([][]float64, mixRows)
			for i := range spec.EpochClassWeights {
				spec.EpochClassWeights[i] = []float64{wA, wB, 0.2, 0.2}
			}
		}
		verr := spec.Validate()
		sc, berr := Build(spec)
		if verr == nil && berr != nil {
			t.Fatalf("Validate accepted a spec Build rejects: %v (spec %+v)", berr, spec)
		}
		if verr != nil && berr == nil {
			t.Fatalf("Validate rejected (%v) but Build accepted (spec %+v)", verr, spec)
		}
		if berr != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Build produced a scenario its own Validate rejects: %v", err)
		}
		if w, err := NewWorkload(spec); err != nil {
			t.Fatalf("Build succeeded but NewWorkload failed: %v", err)
		} else if w.NumVMs() != sc.Workload.NumVMs() {
			t.Fatalf("NewWorkload sized %d VMs, Build %d", w.NumVMs(), sc.Workload.NumVMs())
		}
	})
}
