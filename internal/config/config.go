// Package config builds ready-to-run scenarios: the paper's Table I fleet
// (Lisbon / Zurich / Helsinki with 1500/1000/500 servers, 150/100/50 kWp PV
// and 960/720/480 kWh batteries at 50% DoD), its workload parameters, and
// proportionally scaled-down variants for fast experimentation and tests.
//
// Every call constructs fresh mutable state (battery banks, forecasters,
// green controllers), so one Spec can mint an identical-but-independent
// scenario per policy — the comparison discipline the paper's evaluation
// relies on.
package config

import (
	"fmt"
	"math"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/dc"
	"geovmp/internal/fault"
	"geovmp/internal/green"
	"geovmp/internal/network"
	"geovmp/internal/par"
	"geovmp/internal/power"
	"geovmp/internal/sim"
	"geovmp/internal/solar"
	"geovmp/internal/storage"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// ForecastKind selects the renewable forecaster (ablation A5).
type ForecastKind int

// Forecaster choices.
const (
	ForecastWCMA ForecastKind = iota // the paper's [21] default
	ForecastEWMA
	ForecastLastValue
	ForecastOracle
)

// Spec parameterizes scenario construction. Zero values select the paper's
// Table I world; NewSpec plus Options is the composable way to build
// variants, and Preset returns registered named specs.
type Spec struct {
	// Name labels the scenario in results and reports (default
	// "paper-geo3dc", or the preset's name).
	Name string
	// Scale multiplies Table I fleet sizes and energy sources; 1.0 is the
	// paper's setup, 0.1 a laptop-fast variant with identical structure.
	Scale float64
	// Seed drives all randomness (workload, network, controllers).
	Seed uint64
	// Horizon defaults to the paper's one week.
	Horizon timeutil.Horizon
	// VMsPerServer sizes the workload relative to the fleet (default 7
	// initial VMs per server).
	VMsPerServer float64
	// FineStepSec is the green controller period (default 5 s, the
	// paper's; tests use 60 s for speed). Any non-positive value selects
	// the default — a zero-length step cannot be simulated.
	FineStepSec float64
	// QoS is the migration latency guarantee (default 0.98). Zero means
	// unset; a negative value disables the guarantee entirely (the
	// per-link migration budget spans the whole slot), mirroring
	// WarmupSlots' negative-disables convention.
	QoS float64
	// Forecast selects the renewable forecaster (default WCMA).
	Forecast ForecastKind
	// BatteryScale additionally scales battery capacity (ablation A4);
	// 0 means 1.0.
	BatteryScale float64
	// Sites replaces the Table I fleet with a custom site list (see
	// TableISites for the default expressed as one).
	Sites []Site
	// Topo overrides the inter-DC topology. Nil derives it: the paper's
	// backbone for the Table I fleet, a great-circle mesh for custom
	// Sites.
	Topo *network.Topology
	// ClassWeights overrides the synthetic workload's class mix in class
	// order (websearch, mapreduce, hpc, batch).
	ClassWeights []float64
	// WarmupSlots are simulated but excluded from metrics (0 selects the
	// simulator default of 6; negative disables warmup).
	WarmupSlots int
	// ProfileSamples is the per-slot downsampled CPU-profile length the
	// policies observe (0 selects the simulator default of 12; negative
	// gives the controllers empty profiles — the blind-controller
	// ablation).
	ProfileSamples int
	// Workload, when non-nil, replaces the synthetic generator (for
	// example a replayed trace loaded with trace.LoadReplay). It must be
	// safe for concurrent readers when used in a parallel sweep.
	Workload trace.Source
	// ReplayDir, when set, loads the workload from a replay-format CSV
	// directory (trace.LoadReplay) at build time. A non-nil Workload wins
	// over it. Multi-seed sweeps should load once and set Workload so the
	// files are not re-read per column.
	ReplayDir string
	// TraceVMsFile and TraceCPUFile, when both set, ingest an
	// Azure/Google-style cluster trace — VM lifetimes plus per-interval
	// CPU readings — at build time (trace.IngestCluster with defaults).
	// Mutually exclusive with ReplayDir; a non-nil Workload wins.
	TraceVMsFile string
	TraceCPUFile string
	// Templates calibrates the synthetic generator to usage templates
	// fitted from a real trace (trace.FitTemplates): new services draw a
	// template by weight and member VMs parameterize around the fitted
	// values. Empty keeps the paper's synthetic families bit-identical.
	Templates []trace.UsageTemplate
	// MaxFineTableBytes bounds each compiled utilization table
	// (trace.CompileOptions.MaxFineTableBytes): 0 selects the compiler's
	// 256 MiB default, negative disables the fine table. Tables over the
	// budget stream through chunk cursors instead of residing in memory.
	MaxFineTableBytes int64
	// FineChunkSlots pins the streamed chunk width in slots for
	// out-of-core tables (0 derives it from the budget).
	FineChunkSlots int
	// Epochs splits the horizon into rolling-horizon re-optimization
	// epochs: the controllers are signalled at each interior boundary, the
	// per-epoch migration budget resets, and results carry a per-epoch
	// breakdown. 0 or 1 with a zero Migration budget is the static path,
	// byte-identical to a spec without these fields.
	Epochs int
	// Migration parameterizes the epoch engine's migration accounting
	// (per-epoch move budget, transfer energy, downtime). Setting any
	// field activates the engine even at Epochs <= 1.
	Migration sim.MigrationBudget
	// EpochClassWeights optionally schedules synthetic class-mix regimes
	// (class order as ClassWeights): the horizon is partitioned into
	// len(rows) equal phases and VMs arriving within a phase draw from its
	// row, so the fleet's mix shifts across the horizon. The row count is
	// independent of Epochs — presets set them equal so the workload's
	// regime shifts land exactly on the engine's re-optimization
	// boundaries, but an epochs=1 run over the same shifting workload is
	// valid (and is how the epoch engine's value is measured).
	EpochClassWeights [][]float64
	// ArrivalWave modulates the synthetic arrival rate diurnally with the
	// given amplitude in [0, 1); 0 keeps arrivals stationary.
	ArrivalWave float64
	// FastMath opts controllers into their approximate fast-numeric paths
	// (quantized correlation kernel, epoch-amortized embedding caches).
	// Default off: unset runs stay bit-identical to prior releases. The
	// per-pair kernel error is bounded by correlation.FastEps; see
	// PERFORMANCE.md for the end-to-end metric tolerance.
	FastMath bool
	// Faults injects a deterministic failure schedule (internal/fault):
	// explicit outage windows plus per-day stochastic rates for server,
	// DC, link and PV failures. The zero config disables injection and
	// keeps every run byte-identical to a spec without the field.
	Faults fault.Config
	// Storage attaches the replicated / erasure-coded data-placement
	// model (internal/storage), adding data-loss risk and repair-traffic
	// accounting to faulty runs. The zero config disables it.
	Storage storage.Config
}

// DefaultScenarioName labels unnamed specs: the paper's Table I world.
const DefaultScenarioName = "paper-geo3dc"

func (s *Spec) applyDefaults() {
	if s.Name == "" {
		s.Name = DefaultScenarioName
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Horizon.Slots == 0 {
		s.Horizon = timeutil.Week()
	}
	if s.VMsPerServer == 0 {
		s.VMsPerServer = 7
	}
	if s.QoS == 0 {
		s.QoS = 0.98
	}
	if s.BatteryScale == 0 {
		s.BatteryScale = 1
	}
}

// newForecaster builds the selected forecaster for a plant.
func newForecaster(kind ForecastKind, plant solar.Plant) solar.Forecaster {
	switch kind {
	case ForecastEWMA:
		return solar.NewEWMA(0.5)
	case ForecastLastValue:
		return &solar.LastValue{}
	case ForecastOracle:
		return &solar.Oracle{Plant: plant}
	default:
		return solar.NewWCMA(4, 0.7)
	}
}

// Validate checks the spec's declarative fields — sites, class mixes,
// epoch schedule, arrival wave, scale — without building anything. Build
// and NewWorkload call it; it is also the spec-validation fuzzing surface.
func (s Spec) Validate() error {
	s.applyDefaults()
	// The comparisons are written to reject NaN too: a NaN scale or wave
	// passes any single `< 0` test and then corrupts every table sized
	// from it.
	if !(s.Scale >= 0) || math.IsInf(s.Scale, 0) {
		return fmt.Errorf("config: bad scale %v", s.Scale)
	}
	if math.IsNaN(s.VMsPerServer) || math.IsInf(s.VMsPerServer, 0) {
		return fmt.Errorf("config: bad VMsPerServer %v", s.VMsPerServer)
	}
	if s.Horizon.Slots < 0 {
		return fmt.Errorf("config: negative horizon %d", s.Horizon.Slots)
	}
	sites := s.Sites
	if len(sites) == 0 {
		sites = TableISites()
	}
	for i, st := range sites {
		if st.Servers <= 0 {
			return fmt.Errorf("config: site %d (%q) has no servers", i, st.Name)
		}
		switch st.City {
		case "", "lisbon", "zurich", "helsinki":
		default:
			return fmt.Errorf("config: site %d (%q) names unknown city %q (have lisbon, zurich, helsinki; leave empty for the generic models)", i, st.Name, st.City)
		}
	}
	if err := validateClassWeights(s.ClassWeights, "ClassWeights"); err != nil {
		return err
	}
	if s.Epochs < 0 {
		return fmt.Errorf("config: negative epoch count %d", s.Epochs)
	}
	if !(s.ArrivalWave >= 0 && s.ArrivalWave < 1) {
		return fmt.Errorf("config: ArrivalWave %v outside [0, 1)", s.ArrivalWave)
	}
	// Charging fields may be negative (the disable convention) but must be
	// finite: one +Inf move would turn every downstream total into +Inf,
	// and NaN would silently disable the charge instead of erroring.
	if math.IsNaN(s.Migration.EnergyPerGB) || math.IsInf(s.Migration.EnergyPerGB, 0) {
		return fmt.Errorf("config: bad Migration.EnergyPerGB %v", s.Migration.EnergyPerGB)
	}
	if math.IsNaN(s.Migration.DowntimeSec) || math.IsInf(s.Migration.DowntimeSec, 0) {
		return fmt.Errorf("config: bad Migration.DowntimeSec %v", s.Migration.DowntimeSec)
	}
	for e, row := range s.EpochClassWeights {
		if len(row) == 0 {
			return fmt.Errorf("config: empty EpochClassWeights[%d] row", e)
		}
		if err := validateClassWeights(row, fmt.Sprintf("EpochClassWeights[%d]", e)); err != nil {
			return err
		}
	}
	if (s.TraceVMsFile == "") != (s.TraceCPUFile == "") {
		return fmt.Errorf("config: TraceVMsFile and TraceCPUFile must be set together")
	}
	if s.ReplayDir != "" && s.TraceVMsFile != "" {
		return fmt.Errorf("config: ReplayDir and TraceVMsFile/TraceCPUFile are mutually exclusive")
	}
	if err := s.Faults.Validate(len(sites)); err != nil {
		return err
	}
	if err := s.Storage.Validate(len(sites)); err != nil {
		return err
	}
	return nil
}

// Build constructs a complete scenario from the spec. Each call returns
// independent mutable state.
func Build(spec Spec) (*sim.Scenario, error) {
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sites := spec.Sites
	topo := spec.Topo
	if len(sites) == 0 {
		sites = TableISites()
		if topo == nil {
			topo = network.PaperTopology()
		}
	}
	if topo == nil {
		topo = MeshTopology(sites)
	}
	fleet := make(dc.Fleet, len(sites))
	for i, st := range sites {
		st.applyDefaults()
		climate, plant, tariff := st.models()
		servers := scaledSiteServers(st, spec.Scale)
		plant.Peak = units.Power(st.PVkWp*spec.Scale) * units.Kilowatt
		battKWh := st.BattKWh
		if battKWh <= 0 {
			battKWh = BatteryZero
		}
		bank, err := battery.New(battery.Config{
			Capacity:   units.Energy(battKWh*spec.Scale*spec.BatteryScale) * units.KilowattHour,
			DoD:        0.5,
			InitialSoC: 0.75,
		})
		if err != nil {
			return nil, err
		}
		fleet[i] = &dc.DC{
			Index:    i,
			Name:     st.Name,
			Servers:  servers,
			Model:    power.E5410(),
			Cooling:  cooling.Site{Climate: climate, Model: cooling.DefaultPUE()},
			Plant:    plant,
			Bank:     bank,
			Tariff:   tariff,
			Forecast: newForecaster(spec.Forecast, plant),
			Green:    &green.Controller{Tariff: tariff, Bank: bank},
		}
	}

	w := spec.Workload
	if w == nil {
		var err error
		if w, err = newWorkload(spec, fleet.TotalServers()); err != nil {
			return nil, err
		}
	}

	return &sim.Scenario{
		Name:           spec.Name,
		Fleet:          fleet,
		Workload:       w,
		Topo:           topo,
		Horizon:        spec.Horizon,
		Seed:           spec.Seed,
		QoS:            spec.QoS,
		ProfileSamples: spec.ProfileSamples,
		FineStepSec:    spec.FineStepSec,
		WarmupSlots:    spec.WarmupSlots,
		Epochs:         spec.Epochs,
		Migration:      spec.Migration,
		FastMath:       spec.FastMath,
		Faults:         spec.Faults,
		Storage:        spec.Storage,
	}, nil
}

// BatteryZero is a convenience spec mutation for the battery ablation: a
// near-zero battery (exactly zero capacity would divide the C-rate away, so
// use a vanishingly small bank).
const BatteryZero = 1e-6

// validateClassWeights checks one class-mix row; label names the field in
// error messages (the stationary mix or one epoch's row).
func validateClassWeights(weights []float64, label string) error {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if n != int(trace.NumClasses) {
		return fmt.Errorf("config: %s has %d entries, want %d", label, n, trace.NumClasses)
	}
	positive := false
	for i, wgt := range weights {
		if wgt < 0 || math.IsNaN(wgt) || math.IsInf(wgt, 0) {
			return fmt.Errorf("config: bad class weight %v at %s[%d]", wgt, label, i)
		}
		positive = positive || wgt > 0
	}
	if !positive {
		return fmt.Errorf("config: %s has no positive entry", label)
	}
	return nil
}

// newWorkload synthesizes the spec's workload for a fleet of totalServers.
// Callers have validated the spec. The epoch class-mix schedule becomes a
// phase list partitioning the horizon into len(rows) equal windows with
// the same floor arithmetic as sim.EpochPlan — so when the row count
// equals Epochs (as the presets arrange, with Epochs within the horizon)
// the regime shifts land exactly on the boundaries the rolling engine
// re-optimizes at. The row count is deliberately independent of Epochs;
// see Spec.EpochClassWeights.
func newWorkload(spec Spec, totalServers int) (trace.Source, error) {
	if spec.ReplayDir != "" {
		return trace.LoadReplay(spec.ReplayDir)
	}
	if spec.TraceVMsFile != "" {
		return trace.IngestCluster(spec.TraceVMsFile, spec.TraceCPUFile, trace.IngestOptions{
			Samples: sim.ResolveProfileSamples(spec.ProfileSamples),
		})
	}
	initialVMs := int(math.Round(float64(totalServers) * spec.VMsPerServer))
	if initialVMs < 10 {
		initialVMs = 10
	}
	var phases []trace.PhaseMix
	if rows := spec.EpochClassWeights; len(rows) > 0 {
		phases = make([]trace.PhaseMix, len(rows))
		for e, row := range rows {
			phases[e] = trace.PhaseMix{
				FromSlot: timeutil.Slot(int64(e) * int64(spec.Horizon.Slots) / int64(len(rows))),
				Weights:  row,
			}
		}
	}
	return trace.New(trace.Config{
		Seed:         spec.Seed,
		Horizon:      spec.Horizon,
		InitialVMs:   initialVMs,
		ClassWeights: spec.ClassWeights,
		Phases:       phases,
		ArrivalWave:  spec.ArrivalWave,
		Templates:    spec.Templates,
	}), nil
}

// scaledSiteServers is the one place the per-site server scaling lives:
// Build sizes the fleet with it and NewWorkload sizes the workload, so the
// two can never drift apart.
func scaledSiteServers(st Site, scale float64) int {
	return int(math.Max(1, math.Round(float64(st.Servers)*scale)))
}

// scaledServers totals scaledSiteServers over the spec's sites.
func scaledServers(spec Spec) int {
	sites := spec.Sites
	if len(sites) == 0 {
		sites = TableISites()
	}
	total := 0
	for _, st := range sites {
		total += scaledSiteServers(st, spec.Scale)
	}
	return total
}

// NewWorkload returns the workload the spec describes: spec.Workload when
// set, otherwise the synthetic generator sized for the spec's fleet —
// exactly the workload Build would install.
func NewWorkload(spec Spec) (trace.Source, error) {
	spec.applyDefaults()
	if spec.Workload != nil {
		return spec.Workload, nil
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return newWorkload(spec, scaledServers(spec))
}

// CompileWorkload materializes NewWorkload(spec) into an immutable compiled
// trace (trace.Compile) aligned with the spec's profile-sampling and
// fine-step parameters, so the simulator consumes it entirely from flat
// arrays. The result is safe for concurrent readers; the experiment engine
// compiles one per scenario x seed and shares it across that cell column's
// policy runs. The optional worker budget shards the table builds
// (byte-identical output at any worker count; nil compiles serially).
func CompileWorkload(spec Spec, workers *par.Budget) (*trace.Compiled, error) {
	spec.applyDefaults()
	w, err := NewWorkload(spec)
	if err != nil {
		return nil, err
	}
	samples := sim.ResolveProfileSamples(spec.ProfileSamples)
	if samples == 0 {
		samples = -1 // resolved "no profiles": tell Compile to skip the table
	}
	return trace.Compile(w, trace.CompileOptions{
		Samples:           samples,
		FineStepSec:       sim.ResolveFineStep(spec.FineStepSec),
		MaxFineTableBytes: spec.MaxFineTableBytes,
		ChunkSlots:        spec.FineChunkSlots,
		Workers:           workers,
	}), nil
}
