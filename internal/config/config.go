// Package config builds ready-to-run scenarios: the paper's Table I fleet
// (Lisbon / Zurich / Helsinki with 1500/1000/500 servers, 150/100/50 kWp PV
// and 960/720/480 kWh batteries at 50% DoD), its workload parameters, and
// proportionally scaled-down variants for fast experimentation and tests.
//
// Every call constructs fresh mutable state (battery banks, forecasters,
// green controllers), so one Spec can mint an identical-but-independent
// scenario per policy — the comparison discipline the paper's evaluation
// relies on.
package config

import (
	"math"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/dc"
	"geovmp/internal/green"
	"geovmp/internal/network"
	"geovmp/internal/power"
	"geovmp/internal/price"
	"geovmp/internal/sim"
	"geovmp/internal/solar"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// ForecastKind selects the renewable forecaster (ablation A5).
type ForecastKind int

// Forecaster choices.
const (
	ForecastWCMA ForecastKind = iota // the paper's [21] default
	ForecastEWMA
	ForecastLastValue
	ForecastOracle
)

// Spec parameterizes scenario construction.
type Spec struct {
	// Scale multiplies Table I fleet sizes and energy sources; 1.0 is the
	// paper's setup, 0.1 a laptop-fast variant with identical structure.
	Scale float64
	// Seed drives all randomness (workload, network, controllers).
	Seed uint64
	// Horizon defaults to the paper's one week.
	Horizon timeutil.Horizon
	// VMsPerServer sizes the workload relative to the fleet (default 7
	// initial VMs per server).
	VMsPerServer float64
	// FineStepSec is the green controller period (default 5 s; tests use
	// 60 s for speed).
	FineStepSec float64
	// QoS is the migration latency guarantee (default 0.98).
	QoS float64
	// Forecast selects the renewable forecaster (default WCMA).
	Forecast ForecastKind
	// BatteryScale additionally scales battery capacity (ablation A4);
	// 0 means 1.0.
	BatteryScale float64
}

func (s *Spec) applyDefaults() {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Horizon.Slots == 0 {
		s.Horizon = timeutil.Week()
	}
	if s.VMsPerServer == 0 {
		s.VMsPerServer = 7
	}
	if s.QoS == 0 {
		s.QoS = 0.98
	}
	if s.BatteryScale == 0 {
		s.BatteryScale = 1
	}
}

// site is one row of Table I plus the geographic models.
type site struct {
	name    string
	servers int
	pvKWp   float64
	battKWh float64
	climate cooling.Climate
	plant   solar.Plant
	tariff  price.Tariff
}

func tableI() []site {
	return []site{
		{name: "DC1-Lisbon", servers: 1500, pvKWp: 150, battKWh: 960,
			climate: cooling.Lisbon(), plant: solar.LisbonPlant(), tariff: price.LisbonTariff()},
		{name: "DC2-Zurich", servers: 1000, pvKWp: 100, battKWh: 720,
			climate: cooling.Zurich(), plant: solar.ZurichPlant(), tariff: price.ZurichTariff()},
		{name: "DC3-Helsinki", servers: 500, pvKWp: 50, battKWh: 480,
			climate: cooling.Helsinki(), plant: solar.HelsinkiPlant(), tariff: price.HelsinkiTariff()},
	}
}

// newForecaster builds the selected forecaster for a plant.
func newForecaster(kind ForecastKind, plant solar.Plant) solar.Forecaster {
	switch kind {
	case ForecastEWMA:
		return solar.NewEWMA(0.5)
	case ForecastLastValue:
		return &solar.LastValue{}
	case ForecastOracle:
		return &solar.Oracle{Plant: plant}
	default:
		return solar.NewWCMA(4, 0.7)
	}
}

// Build constructs a complete scenario from the spec. Each call returns
// independent mutable state.
func Build(spec Spec) (*sim.Scenario, error) {
	spec.applyDefaults()
	sites := tableI()
	fleet := make(dc.Fleet, len(sites))
	for i, st := range sites {
		servers := int(math.Max(1, math.Round(float64(st.servers)*spec.Scale)))
		plant := st.plant
		plant.Peak = units.Power(st.pvKWp*spec.Scale) * units.Kilowatt
		bank, err := battery.New(battery.Config{
			Capacity:   units.Energy(st.battKWh*spec.Scale*spec.BatteryScale) * units.KilowattHour,
			DoD:        0.5,
			InitialSoC: 0.75,
		})
		if err != nil {
			return nil, err
		}
		tariff := st.tariff
		fleet[i] = &dc.DC{
			Index:    i,
			Name:     st.name,
			Servers:  servers,
			Model:    power.E5410(),
			Cooling:  cooling.Site{Climate: st.climate, Model: cooling.DefaultPUE()},
			Plant:    plant,
			Bank:     bank,
			Tariff:   tariff,
			Forecast: newForecaster(spec.Forecast, plant),
			Green:    &green.Controller{Tariff: tariff, Bank: bank},
		}
	}

	initialVMs := int(math.Round(float64(fleet.TotalServers()) * spec.VMsPerServer))
	if initialVMs < 10 {
		initialVMs = 10
	}
	w := trace.New(trace.Config{
		Seed:       spec.Seed,
		Horizon:    spec.Horizon,
		InitialVMs: initialVMs,
	})

	return &sim.Scenario{
		Name:        "paper-geo3dc",
		Fleet:       fleet,
		Workload:    w,
		Topo:        network.PaperTopology(),
		Horizon:     spec.Horizon,
		Seed:        spec.Seed,
		QoS:         spec.QoS,
		FineStepSec: spec.FineStepSec,
	}, nil
}

// BatteryZero is a convenience spec mutation for the battery ablation: a
// near-zero battery (exactly zero capacity would divide the C-rate away, so
// use a vanishingly small bank).
const BatteryZero = 1e-6
