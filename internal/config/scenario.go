package config

import (
	"fmt"
	"math"
	"sort"

	"geovmp/internal/cooling"
	"geovmp/internal/fault"
	"geovmp/internal/network"
	"geovmp/internal/price"
	"geovmp/internal/sim"
	"geovmp/internal/solar"
	"geovmp/internal/storage"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// Site describes one data center of a custom fleet. Servers, PVkWp and
// BattKWh are pre-scale values: Spec.Scale (and Spec.BatteryScale) apply on
// top, exactly as they do to Table I.
type Site struct {
	Name    string
	Servers int     // server count at Scale 1
	PVkWp   float64 // PV nameplate at Scale 1
	BattKWh float64 // battery capacity at Scale 1; <= 0 means battery-free

	// City selects one of the paper's tuned city models — "lisbon",
	// "zurich" or "helsinki" — for climate, PV geometry and tariff. When
	// empty, generic models are derived from the fields below.
	City string

	// Geography. Latitude drives the generic PV model; both coordinates
	// feed the auto-derived great-circle mesh topology.
	LatDeg, LonDeg float64
	UTCOffsetHours int

	// Generic-model knobs (ignored when City is set). Zero values select
	// the documented defaults.
	MeanTempC    float64 // mean ambient temperature (default 12 C)
	CloudMin     float64 // worst-case PV cloud transmission (default 0.4)
	PeakPrice    float64 // peak tariff, EUR/kWh (default 0.22)
	OffPeakPrice float64 // off-peak tariff, EUR/kWh (default PeakPrice/2)
}

func (s *Site) applyDefaults() {
	if s.MeanTempC == 0 {
		s.MeanTempC = 12
	}
	if s.CloudMin == 0 {
		s.CloudMin = 0.4
	}
	if s.PeakPrice == 0 {
		s.PeakPrice = 0.22
	}
	if s.OffPeakPrice == 0 {
		s.OffPeakPrice = s.PeakPrice / 2
	}
}

// models returns the climate, PV plant and tariff for the site: the paper's
// tuned city presets when City names one, generic parameterized models
// otherwise. The plant's Peak is overwritten by the caller.
func (s Site) models() (cooling.Climate, solar.Plant, price.Tariff) {
	switch s.City {
	case "lisbon":
		return cooling.Lisbon(), solar.LisbonPlant(), price.LisbonTariff()
	case "zurich":
		return cooling.Zurich(), solar.ZurichPlant(), price.ZurichTariff()
	case "helsinki":
		return cooling.Helsinki(), solar.HelsinkiPlant(), price.HelsinkiTariff()
	}
	zone := timeutil.Zone(s.UTCOffsetHours)
	seed := nameSeed(s.Name)
	climate := cooling.Climate{
		Name: s.Name, Zone: zone,
		MeanC: s.MeanTempC, DiurnalC: 5, WeatherC: 3,
		NoiseSeed: seed,
	}
	plant := solar.Plant{
		Name: s.Name, Zone: zone,
		LatitudeD: s.LatDeg, DayOfYear: 105,
		CloudMin: s.CloudMin, NoiseSeed: seed + 1,
	}
	tariff := price.Tariff{
		Name: s.Name, Zone: zone,
		Peak: units.Price(s.PeakPrice), OffPeak: units.Price(s.OffPeakPrice),
		PeakStart: 8, PeakEnd: 21,
	}
	return climate, plant, tariff
}

// nameSeed hashes a site name into a noise-stream seed (FNV-1a).
func nameSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// TableISites returns the paper's Table I fleet as a customizable site
// list: the starting point for variants that add, drop or resize DCs.
func TableISites() []Site {
	return []Site{
		{Name: "DC1-Lisbon", Servers: 1500, PVkWp: 150, BattKWh: 960,
			City: "lisbon", LatDeg: 38.72, LonDeg: -9.14, UTCOffsetHours: 0},
		{Name: "DC2-Zurich", Servers: 1000, PVkWp: 100, BattKWh: 720,
			City: "zurich", LatDeg: 47.37, LonDeg: 8.54, UTCOffsetHours: 1},
		{Name: "DC3-Helsinki", Servers: 500, PVkWp: 50, BattKWh: 480,
			City: "helsinki", LatDeg: 60.17, LonDeg: 24.94, UTCOffsetHours: 2},
	}
}

// geo5dcSites extends Table I with two additional European sites, keeping
// the paper's three tuned cities untouched.
func geo5dcSites() []Site {
	sites := TableISites()
	return append(sites,
		Site{Name: "DC4-Dublin", Servers: 800, PVkWp: 80, BattKWh: 600,
			LatDeg: 53.35, LonDeg: -6.26, UTCOffsetHours: 0, MeanTempC: 9, CloudMin: 0.3,
			PeakPrice: 0.20, OffPeakPrice: 0.10},
		Site{Name: "DC5-Milan", Servers: 700, PVkWp: 120, BattKWh: 640,
			LatDeg: 45.46, LonDeg: 9.19, UTCOffsetHours: 1, MeanTempC: 15, CloudMin: 0.5,
			PeakPrice: 0.25, OffPeakPrice: 0.14},
	)
}

// MeshTopology derives a full-mesh topology from a site list: great-circle
// distances from the sites' coordinates, with the paper's link speeds
// (10 Gb/s storage uplinks, 100 Gb/s intranet fabric and backbone) and BER
// distribution.
func MeshTopology(sites []Site) *network.Topology {
	n := len(sites)
	t := &network.Topology{
		N:         n,
		DistanceM: make([][]float64, n),
		LocalBW:   make([]units.Bandwidth, n),
		IntraBW:   make([]units.Bandwidth, n),
		Backbone:  100 * units.GigabitPerSecond,
		BER:       network.PaperBER(),
	}
	for i := range sites {
		t.DistanceM[i] = make([]float64, n)
		t.LocalBW[i] = 10 * units.GigabitPerSecond
		t.IntraBW[i] = 100 * units.GigabitPerSecond
		for j := range sites {
			if i != j {
				t.DistanceM[i][j] = haversineM(sites[i].LatDeg, sites[i].LonDeg, sites[j].LatDeg, sites[j].LonDeg)
			}
		}
	}
	return t
}

// haversineM returns the great-circle distance between two coordinates in
// meters (mean Earth radius).
func haversineM(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371e3
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Option mutates a Spec during NewSpec construction — the composable way to
// describe scenario variants.
type Option func(*Spec)

// NewSpec builds a named Spec from options. The zero option set is the
// paper's Table I world.
func NewSpec(name string, opts ...Option) Spec {
	s := Spec{Name: name}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithScale multiplies Table I fleet sizes and energy sources.
func WithScale(scale float64) Option { return func(s *Spec) { s.Scale = scale } }

// WithSeed sets the scenario's base randomness seed.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = seed } }

// WithHorizon sets the experiment duration.
func WithHorizon(h timeutil.Horizon) Option { return func(s *Spec) { s.Horizon = h } }

// WithVMsPerServer sizes the workload relative to the fleet.
func WithVMsPerServer(v float64) Option { return func(s *Spec) { s.VMsPerServer = v } }

// WithFineStep sets the green-controller period in seconds (paper: 5).
func WithFineStep(sec float64) Option { return func(s *Spec) { s.FineStepSec = sec } }

// WithQoS sets the migration latency guarantee (paper: 0.98).
func WithQoS(q float64) Option { return func(s *Spec) { s.QoS = q } }

// WithForecast selects the renewable forecaster.
func WithForecast(k ForecastKind) Option { return func(s *Spec) { s.Forecast = k } }

// WithBatteryScale additionally scales battery capacity; use BatteryZero
// for the battery-free ablation.
func WithBatteryScale(b float64) Option { return func(s *Spec) { s.BatteryScale = b } }

// WithSites replaces the Table I fleet with a custom site list. Unless
// WithTopology is also given, the inter-DC mesh is derived from the sites'
// coordinates.
func WithSites(sites ...Site) Option {
	return func(s *Spec) { s.Sites = append([]Site(nil), sites...) }
}

// WithTopology overrides the inter-DC network topology.
func WithTopology(t *network.Topology) Option { return func(s *Spec) { s.Topo = t } }

// WithClassWeights overrides the workload class mix in class order
// (websearch, mapreduce, hpc, batch).
func WithClassWeights(weights ...float64) Option {
	return func(s *Spec) { s.ClassWeights = append([]float64(nil), weights...) }
}

// WithWarmupSlots sets how many leading slots are simulated but excluded
// from metrics (default 6; negative disables warmup).
func WithWarmupSlots(n int) Option { return func(s *Spec) { s.WarmupSlots = n } }

// WithProfileSamples sets the per-slot downsampled CPU-profile length the
// policies observe (default 12).
func WithProfileSamples(n int) Option { return func(s *Spec) { s.ProfileSamples = n } }

// WithReplayDir loads the workload from a replay-format CSV directory
// (trace.LoadReplay) at build time. For multi-seed sweeps prefer loading
// once and passing the result to WithWorkload.
func WithReplayDir(dir string) Option { return func(s *Spec) { s.ReplayDir = dir } }

// WithTraceFile ingests an Azure/Google-style cluster trace at build time:
// a VM lifetime CSV plus a per-interval CPU readings CSV
// (trace.IngestCluster).
func WithTraceFile(vmCSV, cpuCSV string) Option {
	return func(s *Spec) { s.TraceVMsFile, s.TraceCPUFile = vmCSV, cpuCSV }
}

// WithUsageTemplates calibrates the synthetic generator to usage templates
// fitted from a real trace (trace.FitTemplates).
func WithUsageTemplates(ts ...trace.UsageTemplate) Option {
	return func(s *Spec) { s.Templates = ts }
}

// WithFineTableBudget bounds each compiled utilization table in bytes;
// tables over the budget stream through chunk cursors instead of residing
// in memory (trace.CompileOptions.MaxFineTableBytes; negative disables the
// fine table).
func WithFineTableBudget(bytes int64) Option {
	return func(s *Spec) { s.MaxFineTableBytes = bytes }
}

// WithChunkSlots pins the streamed chunk width in slots for out-of-core
// compiled tables (0 derives it from the budget).
func WithChunkSlots(n int) Option { return func(s *Spec) { s.FineChunkSlots = n } }

// WithWorkload installs a pre-built workload (for example a replayed
// trace) instead of the synthetic generator. The source must be safe for
// concurrent readers when the spec is used in a parallel sweep.
func WithWorkload(w trace.Source) Option { return func(s *Spec) { s.Workload = w } }

// WithEpochs splits the horizon into n rolling-horizon re-optimization
// epochs (1 = the static path, byte-identical to not setting it).
func WithEpochs(n int) Option { return func(s *Spec) { s.Epochs = n } }

// WithFastMath opts controllers into their approximate fast-numeric paths:
// the quantized peak-coincidence kernel (per-pair error bounded by
// correlation.FastEps) and the epoch-amortized embedding force caches.
// Default off — unset runs stay bit-identical to prior releases.
func WithFastMath() Option { return func(s *Spec) { s.FastMath = true } }

// WithMigrationBudget parameterizes the epoch engine's migration
// accounting: per-epoch move budget, per-GB transfer energy, per-move
// downtime. Setting it activates the engine even at Epochs <= 1.
func WithMigrationBudget(b sim.MigrationBudget) Option {
	return func(s *Spec) { s.Migration = b }
}

// WithEpochClassWeights schedules synthetic class-mix regimes (class order
// as WithClassWeights): the horizon splits into len(rows) equal phases,
// shifting the workload's composition across the horizon. Presets pair the
// row count with WithEpochs so regime shifts land on re-optimization
// boundaries, but the two are independent.
func WithEpochClassWeights(rows ...[]float64) Option {
	return func(s *Spec) {
		s.EpochClassWeights = make([][]float64, len(rows))
		for i, row := range rows {
			s.EpochClassWeights[i] = append([]float64(nil), row...)
		}
	}
}

// WithArrivalWave modulates the synthetic arrival rate diurnally with
// amplitude a in [0, 1).
func WithArrivalWave(a float64) Option { return func(s *Spec) { s.ArrivalWave = a } }

// WithFaults injects a failure schedule: explicit outage windows plus
// per-day stochastic failure rates, compiled deterministically per
// scenario seed. The zero config keeps the run byte-identical to a spec
// without faults.
func WithFaults(f fault.Config) Option { return func(s *Spec) { s.Faults = f } }

// WithStorage attaches the replicated / erasure-coded data-placement
// model, adding data-loss risk and repair-traffic accounting under
// faults.
func WithStorage(st storage.Config) Option { return func(s *Spec) { s.Storage = st } }

// ReferenceFaults is the pinned outage schedule of the geo5dc-faulty
// preset, shared by the failure ablation and the acceptance tests so
// every storage scheme faces the identical incident: a three-hour
// whole-DC outage at Milan, degraded server fleets at the four
// surviving sites for the surrounding eight hours, a Lisbon→Helsinki
// link brown-out and a Lisbon PV dropout — plus mild stochastic
// background failure rates for longer horizons. The explicit windows
// start after the default six warmup slots so short measured runs see
// them.
func ReferenceFaults() fault.Config {
	return fault.Config{
		Outages: []fault.Outage{
			{Kind: fault.KindDC, DC: 4, Start: 6, Slots: 3},
			{Kind: fault.KindServer, DC: 0, Start: 5, Slots: 8, Frac: 0.20},
			{Kind: fault.KindServer, DC: 1, Start: 5, Slots: 8, Frac: 0.25},
			{Kind: fault.KindServer, DC: 2, Start: 5, Slots: 8, Frac: 0.20},
			{Kind: fault.KindServer, DC: 3, Start: 5, Slots: 8, Frac: 0.15},
			{Kind: fault.KindLink, DC: 0, To: 2, Start: 7, Slots: 2, Frac: 0.05},
			{Kind: fault.KindPV, DC: 0, Start: 8, Slots: 4, Frac: 1},
		},
		ServerFailRatePerDay: 0.3,
		LinkFailRatePerDay:   0.1,
		PVDropRatePerDay:     0.2,
		MeanRepairSlots:      3,
	}
}

// presetBuilders registers the named scenario presets.
var presetBuilders = map[string]func() Spec{
	// The paper's Sect. V world: Table I fleet, WCMA forecasting, one week.
	"paper-geo3dc": func() Spec { return Spec{Name: "paper-geo3dc"} },
	// Table I with the batteries removed — the A4 ablation end point.
	"paper-geo3dc-nobattery": func() Spec {
		return Spec{Name: "paper-geo3dc-nobattery", BatteryScale: BatteryZero}
	},
	// A five-site European fleet: Table I plus Dublin and Milan, with a
	// great-circle mesh backbone.
	"geo5dc": func() Spec { return Spec{Name: "geo5dc", Sites: geo5dcSites()} },
	// The five-site fleet at 40% of full scale — 1800 servers, ~12600
	// initial VMs: the paper-scale stress preset the global-phase
	// benchmarks and the intra-cell sharding target. Pair it with a short
	// horizon (the Spec default is still the full week) unless you mean to
	// wait.
	"geo5dc-large": func() Spec {
		return Spec{Name: "geo5dc-large", Sites: geo5dcSites(), Scale: 0.4}
	},
	// Table I under a diurnal rolling horizon: one epoch per day, arrivals
	// waving with the afternoon peak, and the class mix alternating between
	// interactive-heavy weekday-like days and batch/HPC-heavy off days —
	// the regime drift a static placement slowly goes stale against.
	"geo3dc-diurnal": func() Spec {
		return Spec{
			Name:              "geo3dc-diurnal",
			Epochs:            7,
			ArrivalWave:       0.35,
			EpochClassWeights: diurnalWeights(7),
		}
	},
	// The five-site dynamic fleet under the reference incident schedule
	// (ReferenceFaults) with erasure-coded RS(2,2) volumes — the
	// fault-and-durability subsystem's evaluation scenario: forced
	// evacuations, stranded-VM downtime, repair traffic competing with
	// user traffic, and a data-loss-risk signal the storage ablation
	// compares across schemes.
	"geo5dc-faulty": func() Spec {
		return Spec{
			Name:              "geo5dc-faulty",
			Sites:             geo5dcSites(),
			Epochs:            4,
			ArrivalWave:       0.3,
			EpochClassWeights: dynamicMixWeights(),
			Faults:            ReferenceFaults(),
			Storage:           storage.Config{Scheme: storage.SchemeErasure, K: 2, M: 2},
		}
	},
	// The five-site fleet under a four-regime dynamic workload: the class
	// mix walks from websearch-heavy through mapreduce- and HPC-heavy to
	// batch-heavy across the week's four epochs, with waving arrivals —
	// the rolling-horizon engine's primary evaluation scenario.
	"geo5dc-dynamic": func() Spec {
		return Spec{
			Name:              "geo5dc-dynamic",
			Sites:             geo5dcSites(),
			Epochs:            4,
			ArrivalWave:       0.3,
			EpochClassWeights: dynamicMixWeights(),
		}
	},
}

// dynamicMixWeights is the four-regime class-mix walk shared by the
// geo5dc-dynamic and geo5dc-faulty presets.
func dynamicMixWeights() [][]float64 {
	return [][]float64{
		{0.55, 0.20, 0.15, 0.10}, // interactive-heavy
		{0.25, 0.45, 0.15, 0.15}, // mapreduce-heavy
		{0.15, 0.20, 0.50, 0.15}, // hpc-heavy
		{0.15, 0.15, 0.15, 0.55}, // batch-heavy
	}
}

// diurnalWeights builds the geo3dc-diurnal mix schedule: odd days lean
// interactive (websearch/mapreduce), even days lean batch/HPC.
func diurnalWeights(days int) [][]float64 {
	rows := make([][]float64, days)
	for d := range rows {
		if d%2 == 0 {
			rows[d] = []float64{0.50, 0.25, 0.15, 0.10}
		} else {
			rows[d] = []float64{0.20, 0.20, 0.25, 0.35}
		}
	}
	return rows
}

// Preset returns the named scenario spec. Callers may further customize the
// returned Spec (it is a value).
func Preset(name string) (Spec, error) {
	b, ok := presetBuilders[name]
	if !ok {
		return Spec{}, fmt.Errorf("config: unknown preset %q (have %v)", name, PresetNames())
	}
	return b(), nil
}

// PresetNames lists the registered presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presetBuilders))
	for n := range presetBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
