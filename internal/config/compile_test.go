package config

import (
	"reflect"
	"testing"

	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
)

// compileSpec returns a reduced variant of a preset for the equivalence
// runs: small fleet, short horizon, coarse fine step.
func compileSpec(t *testing.T, preset string, seed uint64) Spec {
	t.Helper()
	spec, err := Preset(preset)
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Seed = seed
	spec.Horizon = timeutil.Hours(8)
	spec.FineStepSec = 300
	return spec
}

// runWith builds a fresh scenario for spec with the given workload (nil
// selects the synthetic generator) and simulates the proposed controller —
// the policy exercising every observation path: profiles, volumes,
// energies, images and the fine loop.
func runWith(t *testing.T, spec Spec, w trace.Source, env *sim.Environment) *sim.Result {
	t.Helper()
	spec.Workload = w
	sc, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc.Env = env
	res, err := sim.Run(sc, core.New(0.9, spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompiledMatchesSynthesized is the compiled-trace oracle: simulating
// over trace.Compile(w) must reproduce the exact Result — cost, energy,
// response samples, migrations, series, placements — of simulating over the
// live synthetic workload, across presets and seeds. The compiled
// environment tables must be equally invisible.
func TestCompiledMatchesSynthesized(t *testing.T) {
	for _, preset := range []string{"paper-geo3dc", "geo5dc"} {
		for _, seed := range []uint64{7, 19} {
			spec := compileSpec(t, preset, seed)

			live := runWith(t, spec, nil, nil)
			compiled, err := CompileWorkload(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			fromCompiled := runWith(t, spec, compiled, nil)
			if !reflect.DeepEqual(live, fromCompiled) {
				t.Errorf("%s seed %d: compiled-trace run differs from live workload run", preset, seed)
			}

			// Environment tables on top must not change a single bit either.
			sc, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			env := sim.CompileEnvironment(sc.Fleet, sc.Horizon, spec.FineStepSec, nil)
			withEnv := runWith(t, spec, compiled, env)
			if !reflect.DeepEqual(live, withEnv) {
				t.Errorf("%s seed %d: compiled-environment run differs from live run", preset, seed)
			}
		}
	}
}

// TestCompiledMatchesSynthesizedEnerAware covers the plain-FFD local phase
// and the no-embedding observation pattern on a second policy.
func TestCompiledMatchesSynthesizedEnerAware(t *testing.T) {
	spec := compileSpec(t, "paper-geo3dc", 11)
	build := func(w trace.Source) *sim.Result {
		spec.Workload = w
		sc, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sc, policy.EnerAware{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	live := build(nil)
	compiled, err := CompileWorkload(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, build(compiled)) {
		t.Error("compiled-trace run differs from live run under Ener-aware")
	}
}

// TestCompileWorkloadIdempotent asserts recompiling a compiled trace with
// the same parameters returns it unchanged.
func TestCompileWorkloadIdempotent(t *testing.T) {
	spec := compileSpec(t, "paper-geo3dc", 3)
	c1, err := CompileWorkload(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = c1
	c2, err := CompileWorkload(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("recompiling a compatible compiled trace should be the identity")
	}
}

// TestNewWorkloadMatchesBuild asserts the standalone workload constructor
// sizes the workload exactly like Build does.
func TestNewWorkloadMatchesBuild(t *testing.T) {
	spec := compileSpec(t, "geo5dc", 5)
	w, err := NewWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumVMs() != sc.Workload.NumVMs() {
		t.Fatalf("NewWorkload VMs = %d, Build's = %d", w.NumVMs(), sc.Workload.NumVMs())
	}
	if w.Slots() != sc.Workload.Slots() {
		t.Fatalf("NewWorkload slots = %d, Build's = %d", w.Slots(), sc.Workload.Slots())
	}
}
