package config

import (
	"math"
	"testing"
)

// Documented end-to-end tolerances of the fast numeric mode (PERFORMANCE.md
// "Fast numeric mode"). The per-pair kernel error is hard-bounded by
// correlation.FastEps (≈0.4% of a correlation unit); how far that
// propagates depends on the metric's shape:
//
//   - Fleet aggregates (operational cost, total energy) average over every
//     slot and DC, so pair-level noise washes out: observed ≤0.5% on the
//     tested grid, pinned at 2%.
//   - Response metrics are order statistics over individual placements: a
//     borderline cluster assignment flipped by sub-FastEps noise relocates
//     a service chain and moves the mean/worst sample. On the reduced
//     benchmark fleets they shift up to ~15%, pinned at 20%.
const (
	fastMathTolAggregate = 0.02
	fastMathTolResponse  = 0.20
)

// TestFastMathTolerance is the tentpole acceptance test: two presets x two
// seeds, exact versus FastMath, every headline metric pinned within its
// documented tolerance. Both runs are fully deterministic, so any failure
// is a real behavior change, not flake. It also asserts fast mode actually
// engaged — identical results would mean the flag is dead plumbing.
func TestFastMathTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	relDiff := func(fast, exact float64) float64 {
		if exact == 0 {
			return math.Abs(fast)
		}
		return math.Abs(fast-exact) / math.Abs(exact)
	}
	identical := true
	for _, preset := range []string{"paper-geo3dc", "geo5dc"} {
		for _, seed := range []uint64{7, 19} {
			spec := compileSpec(t, preset, seed)
			// The tolerance grid runs a larger fleet than the equivalence
			// tests: on very small fleets single placement flips dominate
			// every metric and no meaningful bound exists.
			spec.Scale = 0.05
			exact := runWith(t, spec, nil, nil)
			fastSpec := spec
			fastSpec.FastMath = true
			fast := runWith(t, fastSpec, nil, nil)

			checks := []struct {
				name        string
				fast, exact float64
				tol         float64
			}{
				{"op-cost-eur", float64(fast.OpCost), float64(exact.OpCost), fastMathTolAggregate},
				{"total-energy", float64(fast.TotalEnergy), float64(exact.TotalEnergy), fastMathTolAggregate},
				{"resp-mean", fast.RespSummary.Mean(), exact.RespSummary.Mean(), fastMathTolResponse},
				{"resp-worst", fast.RespSummary.Max(), exact.RespSummary.Max(), fastMathTolResponse},
			}
			for _, c := range checks {
				if d := relDiff(c.fast, c.exact); d > c.tol {
					t.Errorf("%s seed %d %s: fast %v vs exact %v — rel diff %.4f > %.2f",
						preset, seed, c.name, c.fast, c.exact, d, c.tol)
				} else if d != 0 {
					identical = false
					t.Logf("%s seed %d %s: rel diff %.5f (tol %.2f)", preset, seed, c.name, d, c.tol)
				}
			}
		}
	}
	if identical {
		t.Error("fast-math runs were bit-identical to exact on every cell — the mode did not engage")
	}
}
