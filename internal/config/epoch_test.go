package config

import (
	"math"
	"reflect"
	"testing"

	"geovmp/internal/core"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

// runSpec builds a fresh scenario for spec and simulates a fresh proposed
// controller over it.
func runSpec(t *testing.T, spec Spec) *sim.Result {
	t.Helper()
	sc, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sc, core.New(0.9, spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEpochsOneMatchesStatic is the rolling-horizon engine's equivalence
// contract: WithEpochs(1) — one epoch spanning the horizon, no migration
// budget — must reproduce the static path's Result byte for byte, across
// presets and seeds. Anyone routing Epochs=1 through new engine machinery
// must keep this green without touching the expectation.
func TestEpochsOneMatchesStatic(t *testing.T) {
	for _, preset := range []string{"paper-geo3dc", "geo5dc"} {
		for _, seed := range []uint64{7, 19} {
			spec := compileSpec(t, preset, seed)
			static := runSpec(t, spec)
			spec.Epochs = 1
			rolling := runSpec(t, spec)
			if !reflect.DeepEqual(static, rolling) {
				t.Errorf("%s seed %d: Epochs=1 run differs from the static path", preset, seed)
			}
		}
	}
}

// dynamicSpec is the reduced rolling-horizon scenario the accounting tests
// share: the geo5dc-dynamic preset shrunk to test size, keeping its four
// epochs and shifting class mix.
func dynamicSpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	spec, err := Preset("geo5dc-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 0.01
	spec.Seed = seed
	spec.Horizon = timeutil.Hours(12)
	spec.FineStepSec = 300
	return spec
}

// TestRollingEpochAccounting checks the per-epoch breakdown's books: one
// stat per epoch covering the whole horizon, integer counters summing
// exactly to the headline totals, and cost/energy summing to the totals up
// to float re-association.
func TestRollingEpochAccounting(t *testing.T) {
	res := runSpec(t, dynamicSpec(t, 5))
	if len(res.Epochs) != 4 {
		t.Fatalf("epoch stats = %d, want 4", len(res.Epochs))
	}
	var migrations, rejected int
	var cost, energy float64
	prevEnd := 0
	for _, es := range res.Epochs {
		if es.StartSlot != prevEnd {
			t.Fatalf("epoch %d starts at %d, want %d", es.Epoch, es.StartSlot, prevEnd)
		}
		prevEnd = es.EndSlot
		migrations += es.Migrations
		rejected += es.MigRejected
		cost += float64(es.Cost)
		energy += float64(es.Energy)
	}
	if prevEnd != 12 {
		t.Fatalf("epochs end at slot %d, want 12", prevEnd)
	}
	if migrations != res.Migrations {
		t.Fatalf("per-epoch migrations sum %d != headline %d", migrations, res.Migrations)
	}
	if rejected != res.MigRejected {
		t.Fatalf("per-epoch rejections sum %d != headline %d", rejected, res.MigRejected)
	}
	if relDiff(cost, float64(res.OpCost)) > 1e-9 {
		t.Fatalf("per-epoch cost sum %v != OpCost %v", cost, res.OpCost)
	}
	if relDiff(energy, float64(res.TotalEnergy)) > 1e-9 {
		t.Fatalf("per-epoch energy sum %v != TotalEnergy %v", energy, res.TotalEnergy)
	}
	if res.Migrations == 0 {
		t.Fatal("dynamic scenario executed no migrations; accounting untested")
	}
	if res.MigEnergy <= 0 || res.MigDowntimeSec <= 0 {
		t.Fatalf("default charging produced MigEnergy=%v MigDowntimeSec=%v", res.MigEnergy, res.MigDowntimeSec)
	}
}

// TestMigrationBudgetForbidsMoves pins the budget semantics end to end: a
// negative per-epoch budget executes nothing (wishes become rejections), a
// small positive budget caps executed moves per epoch.
func TestMigrationBudgetForbidsMoves(t *testing.T) {
	spec := dynamicSpec(t, 5)
	spec.Migration = sim.MigrationBudget{MaxMovesPerEpoch: -1}
	res := runSpec(t, spec)
	if res.Migrations != 0 {
		t.Fatalf("forbidden migration executed %d moves", res.Migrations)
	}
	if res.MigRejected == 0 {
		t.Fatal("forbidden migration rejected nothing — the clustering never wanted to move?")
	}
	if res.MigEnergy != 0 || res.MigDowntimeSec != 0 {
		t.Fatalf("no moves but charged MigEnergy=%v MigDowntimeSec=%v", res.MigEnergy, res.MigDowntimeSec)
	}

	spec.Migration = sim.MigrationBudget{MaxMovesPerEpoch: 3}
	capped := runSpec(t, spec)
	for _, es := range capped.Epochs {
		if es.Migrations > 3 {
			t.Fatalf("epoch %d executed %d moves over a budget of 3", es.Epoch, es.Migrations)
		}
	}
	if capped.Migrations == 0 {
		t.Fatal("budget of 3 per epoch executed nothing")
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
