package sim_test

import (
	"testing"

	"geovmp/internal/policy"
	"geovmp/internal/sim"
)

// TestResolveDefaults pins the unset-vs-override convention: zero selects
// the default, negative selects the zero-value override where one is
// meaningful (mirroring WarmupSlots).
func TestResolveDefaults(t *testing.T) {
	if got := sim.ResolveQoS(0); got != sim.DefaultQoS {
		t.Fatalf("ResolveQoS(0) = %v", got)
	}
	if got := sim.ResolveQoS(-1); got != 0 {
		t.Fatalf("ResolveQoS(-1) = %v, want 0 (guarantee disabled)", got)
	}
	if got := sim.ResolveQoS(0.95); got != 0.95 {
		t.Fatalf("ResolveQoS(0.95) = %v", got)
	}
	if got := sim.ResolveProfileSamples(0); got != sim.DefaultProfileSamples {
		t.Fatalf("ResolveProfileSamples(0) = %v", got)
	}
	if got := sim.ResolveProfileSamples(-3); got != 0 {
		t.Fatalf("ResolveProfileSamples(-3) = %v, want 0 (no profiles)", got)
	}
	if got := sim.ResolveProfileSamples(24); got != 24 {
		t.Fatalf("ResolveProfileSamples(24) = %v", got)
	}
	if got := sim.ResolveFineStep(0); got != sim.DefaultFineStepSec {
		t.Fatalf("ResolveFineStep(0) = %v", got)
	}
	if got := sim.ResolveFineStep(-5); got != sim.DefaultFineStepSec {
		t.Fatalf("ResolveFineStep(-5) = %v (no meaningful zero override)", got)
	}
	if got := sim.ResolveFineStep(60); got != 60 {
		t.Fatalf("ResolveFineStep(60) = %v", got)
	}
}

// TestNegativeQoSDisablesGuarantee runs a scenario with QoS < 0: the
// migration budget spans the whole slot, so nothing is rejected.
func TestNegativeQoSDisablesGuarantee(t *testing.T) {
	sc := tinyScenario(t, 6)
	sc.QoS = -1
	res, err := sim.Run(sc, allPolicies(6)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.MigRejected != 0 {
		t.Fatalf("disabled QoS still rejected %d migrations", res.MigRejected)
	}
}

// TestNegativeProfileSamplesRunsBlind runs with ProfileSamples < 0: the
// controllers observe empty profiles but the simulation still completes.
func TestNegativeProfileSamplesRunsBlind(t *testing.T) {
	sc := tinyScenario(t, 6)
	sc.ProfileSamples = -1
	res, err := sim.Run(sc, policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergy <= 0 {
		t.Fatal("blind run consumed no energy")
	}
}
