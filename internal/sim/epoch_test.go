package sim

import (
	"testing"

	"geovmp/internal/timeutil"
)

func TestEpochPlanPartition(t *testing.T) {
	for _, tc := range []struct {
		epochs int
		slots  timeutil.Slot
	}{
		{1, 1}, {1, 168}, {2, 10}, {3, 10}, {4, 8}, {7, 168}, {5, 5},
		{168, 168}, {3, 7}, {16, 24},
	} {
		p := NewEpochPlan(tc.epochs, tc.slots)
		if p.Start(0) != 0 {
			t.Fatalf("E=%d S=%d: Start(0) = %d", tc.epochs, tc.slots, p.Start(0))
		}
		if p.End(p.Epochs()-1) != tc.slots {
			t.Fatalf("E=%d S=%d: End(last) = %d, want %d", tc.epochs, tc.slots, p.End(p.Epochs()-1), tc.slots)
		}
		for e := 0; e < p.Epochs(); e++ {
			if p.End(e) <= p.Start(e) {
				t.Fatalf("E=%d S=%d: epoch %d empty [%d, %d)", tc.epochs, tc.slots, e, p.Start(e), p.End(e))
			}
			if p.EpochOf(p.Start(e)) != e {
				t.Fatalf("E=%d S=%d: EpochOf(Start(%d)=%d) = %d", tc.epochs, tc.slots, e, p.Start(e), p.EpochOf(p.Start(e)))
			}
		}
		for sl := timeutil.Slot(0); sl < tc.slots; sl++ {
			e := p.EpochOf(sl)
			if sl < p.Start(e) || sl >= p.End(e) {
				t.Fatalf("E=%d S=%d: slot %d mapped to epoch %d [%d, %d)", tc.epochs, tc.slots, sl, e, p.Start(e), p.End(e))
			}
		}
	}
}

func TestEpochPlanClamps(t *testing.T) {
	if got := NewEpochPlan(0, 24).Epochs(); got != 1 {
		t.Fatalf("epochs(0) = %d, want 1", got)
	}
	if got := NewEpochPlan(-3, 24).Epochs(); got != 1 {
		t.Fatalf("epochs(-3) = %d, want 1", got)
	}
	if got := NewEpochPlan(100, 24).Epochs(); got != 24 {
		t.Fatalf("epochs(100) over 24 slots = %d, want 24 (an epoch is at least a slot)", got)
	}
}

func TestMigrationBudgetResolved(t *testing.T) {
	def := MigrationBudget{}.resolved()
	if def.EnergyPerGB != DefaultMigEnergyPerGB || def.DowntimeSec != DefaultMigDowntimeSec {
		t.Fatalf("zero budget resolved to %+v, want engine defaults", def)
	}
	off := MigrationBudget{EnergyPerGB: -1, DowntimeSec: -1}.resolved()
	if off.EnergyPerGB != 0 || off.DowntimeSec != 0 {
		t.Fatalf("negative charging fields resolved to %+v, want disabled", off)
	}
	custom := MigrationBudget{MaxMovesPerEpoch: 5, EnergyPerGB: 7, DowntimeSec: 0.25}.resolved()
	if custom.MaxMovesPerEpoch != 5 || custom.EnergyPerGB != 7 || custom.DowntimeSec != 0.25 {
		t.Fatalf("explicit budget mangled: %+v", custom)
	}
}

func TestNewEpochRunStaticPath(t *testing.T) {
	sc := &Scenario{Horizon: timeutil.Hours(24)}
	if r := newEpochRun(sc, 3); r != nil {
		t.Fatal("static scenario (Epochs 0, zero budget) must not activate the engine")
	}
	sc.Epochs = 1
	if r := newEpochRun(sc, 3); r != nil {
		t.Fatal("Epochs=1 with a zero budget is the static path")
	}
	sc.Epochs = 4
	if r := newEpochRun(sc, 3); r == nil || len(r.stats) != 4 {
		t.Fatalf("Epochs=4 engine = %+v", r)
	}
	sc.Epochs = 0
	sc.Migration = MigrationBudget{MaxMovesPerEpoch: 2}
	if r := newEpochRun(sc, 3); r == nil || len(r.stats) != 1 {
		t.Fatal("a non-zero budget must activate the engine with a single epoch")
	}
}
