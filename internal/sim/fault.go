// Fault-injection support: a compiled failure schedule (internal/fault)
// is executed against the run — per slot the surviving server counts are
// installed on the fleet, link degradations on the network state, and PV
// dropouts on the renewable feed; a whole-DC outage triggers forced
// evacuation of its VMs through migrate.Run under an emergency budget,
// with VMs that cannot leave accruing a full slot of downtime into the
// response samples. When a storage model (internal/storage) is attached,
// each slot's durability is assessed and shard-rebuild traffic is added
// to the inter-DC volume matrix, competing with user traffic in Eq. 1.
//
// The fault-free path is untouched: a scenario with zero Faults and
// Storage configs never constructs a faultRun, and every hook below is
// gated on the nil check — byte-identical to builds without this file.

package sim

import (
	"math"

	"geovmp/internal/dc"
	"geovmp/internal/fault"
	"geovmp/internal/migrate"
	"geovmp/internal/network"
	"geovmp/internal/policy"
	"geovmp/internal/storage"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// faultRun is the per-run state of the fault engine; nil on fault-free
// runs.
type faultRun struct {
	sched      *fault.Schedule
	model      *storage.Model // nil when the storage model is disabled
	evacBudget int            // migrate.Config.MaxMoves semantics

	baseServers []int // healthy fleet sizes, cached before the first slot

	// Current-slot views, installed by startSlot (alias schedule rows).
	health []float64
	down   []bool
	pv     []float64

	anyDown  bool
	downtime []float64 // per-DC stranded-VM downtime of the current slot

	// Evacuation scratch, reused across slots.
	infCaps   []float64
	zeroLoads []float64
	counts    []int
	cands     []migrate.Candidate

	// Durability accumulators over measured slots.
	lossSum   float64
	lossSlots int
}

// newFaultRun compiles the scenario's fault schedule and storage model,
// or returns nil when both are disabled.
func newFaultRun(sc *Scenario, n int) *faultRun {
	if !sc.Faults.Enabled() && !sc.Storage.Enabled() {
		return nil
	}
	r := &faultRun{
		sched:       fault.Compile(sc.Faults, n, int(sc.Horizon.Slots), sc.Seed),
		model:       storage.NewModel(sc.Storage, n),
		baseServers: make([]int, n),
		downtime:    make([]float64, n),
		infCaps:     make([]float64, n),
		zeroLoads:   make([]float64, n),
		counts:      make([]int, n),
	}
	switch {
	case sc.Faults.EvacMovesPerSlot < 0:
		r.evacBudget = -1
	case sc.Faults.EvacMovesPerSlot > 0:
		r.evacBudget = sc.Faults.EvacMovesPerSlot
	}
	for i := range r.infCaps {
		r.infCaps[i] = math.Inf(1)
	}
	for i, d := range sc.Fleet {
		r.baseServers[i] = d.Servers
	}
	return r
}

// startSlot installs slot sl's fault state: surviving server counts on
// the fleet (every capacity-sizing path — policies, allocators, energy
// ceilings — reads dc.Servers, so the whole stack sees the loss), link
// degradations on the network state, and the PV/health views.
func (r *faultRun) startSlot(sl timeutil.Slot, fleet dc.Fleet, net *network.State) {
	r.health = r.sched.CapFrac(sl)
	r.down = r.sched.DCDown(sl)
	r.pv = r.sched.PVFrac(sl)
	net.SetDegrade(r.sched.LinkFactor(sl))
	clear(r.downtime)
	r.anyDown = false
	for i, d := range fleet {
		if r.down[i] {
			r.anyDown = true
		}
		d.Servers = scaledServers(r.baseServers[i], r.health[i])
	}
}

// evacuate forces VMs off fully-down DCs: every VM the placement left
// on a dead DC becomes a migration candidate toward the least-loaded
// healthy DC, revised by migrate.Run under the emergency budget with
// the dead DCs forbidden as destinations and the latency window opened
// to the full slot (an emergency transfer may burn the whole hour).
// Executed moves are appended to the placement (so migration charging
// and counters see them); VMs that could not move remain stranded and
// charge a full slot of downtime to their DC's response sample.
func (r *faultRun) evacuate(p policy.Placement, in *policy.Input, net *network.State, res *Result, measured bool) policy.Placement {
	if !r.anyDown {
		return p
	}
	n := len(r.down)
	// Load = VMs currently assigned per healthy DC, so evacuees spread.
	for i := range r.counts {
		r.counts[i] = 0
	}
	evacuees := 0
	for _, id := range in.ActiveVMs {
		d := p.DCOf[id]
		if d >= 0 && d < n && r.down[d] {
			evacuees++
		} else {
			r.counts[d]++
		}
	}
	if evacuees > 0 && r.evacBudget >= 0 {
		r.cands = r.cands[:0]
		for _, id := range in.ActiveVMs { // ascending ids: deterministic order
			d := p.DCOf[id]
			if d < 0 || d >= n || !r.down[d] {
				continue
			}
			best := -1
			for t := 0; t < n; t++ {
				if r.down[t] {
					continue
				}
				if best < 0 || r.counts[t] < r.counts[best] {
					best = t
				}
			}
			if best < 0 {
				break // every DC down: nobody can leave
			}
			r.counts[best]++
			r.cands = append(r.cands, migrate.Candidate{
				ID:      id,
				Current: d,
				Target:  best,
				Load:    in.VMEnergy[id],
				Image:   in.Image[id],
				Dist:    float64(len(r.cands)),
			})
		}
		if len(r.cands) > 0 {
			mres := migrate.Run(r.cands, migrate.Config{
				NDC:        n,
				Caps:       r.infCaps,
				Loads:      r.zeroLoads,
				Constraint: timeutil.SlotSeconds,
				Net:        net,
				MaxMoves:   r.evacBudget,
				Forbidden:  r.down,
			})
			for id, d := range mres.Placement {
				p.DCOf[id] = d
			}
			p.Moves = append(p.Moves, mres.Moves...)
			if measured {
				res.Evacuations += len(mres.Moves)
			}
		}
	}
	// Whoever is still on a dead DC is stranded for the slot.
	for _, id := range in.ActiveVMs {
		d := p.DCOf[id]
		if d >= 0 && d < n && r.down[d] {
			r.downtime[d] = timeutil.SlotSeconds
			if measured {
				res.StrandedVMSlots++
			}
		}
	}
	return p
}

// applyRepair assesses the slot's data durability and injects shard
// rebuild traffic into the inter-DC volume matrix, where it competes
// with user traffic in the destination-latency computation.
func (r *faultRun) applyRepair(ids []int, vol [][]units.DataSize, res *Result, measured bool) {
	if r.model == nil {
		return
	}
	st := r.model.Assess(ids, r.down, r.health, func(from, to int, gb float64) {
		bytes := units.DataSize(gb) * units.Gigabyte
		vol[from][to] += bytes
		if measured {
			res.RepairBytes += bytes
		}
	})
	if measured {
		r.lossSum += st.LossProb
		r.lossSlots++
	}
}

// lossProb returns the run's mean per-slot data-loss probability.
func (r *faultRun) lossProb() float64 {
	if r.lossSlots == 0 {
		return 0
	}
	return r.lossSum / float64(r.lossSlots)
}

// scaledServers maps a capacity fraction onto a surviving server count
// (round-to-nearest; a fully-down DC keeps zero servers).
func scaledServers(base int, frac float64) int {
	if frac >= 1 {
		return base
	}
	if frac <= 0 {
		return 0
	}
	return int(math.Floor(frac*float64(base) + 0.5))
}
