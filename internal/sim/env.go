package sim

import (
	"fmt"
	"strings"

	"geovmp/internal/dc"
	"geovmp/internal/par"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Environment is a precomputed table of a scenario's policy-independent
// time series: per-DC instantaneous PUE and renewable power at every fine
// step, and per-DC realized PV energy per slot. All of it is a pure
// function of the fleet's sites and the horizon — no policy and no battery
// state touches it — so the experiment engine compiles one Environment per
// scenario x seed and shares the read-only result across every policy run
// of that column, exactly like the compiled workload.
type Environment struct {
	dt    float64
	steps int
	slots timeutil.Slot
	fleet string           // fingerprint of the fleet it was compiled for
	pue   [][]float64      // [dc][int(slot)*steps+k]
	renew [][]units.Power  // [dc][int(slot)*steps+k]
	pv    [][]units.Energy // [dc][slot]
}

// fleetFingerprint identifies a fleet's site models: the series are pure
// functions of each DC's cooling site and PV plant parameters (both plain
// scalar structs), so their printed form plus order detects a table
// compiled for a different fleet.
func fleetFingerprint(fleet dc.Fleet) string {
	var b strings.Builder
	for _, d := range fleet {
		fmt.Fprintf(&b, "%s\x00%+v\x00%+v\x00", d.Name, d.Cooling, d.Plant)
	}
	return b.String()
}

// CompileEnvironment evaluates the fleet's cooling and PV series over the
// horizon at the given fine step (both resolved exactly like Scenario's
// defaults). The fleet is only read; the returned table is immutable and
// safe for concurrent readers. The evaluation is sharded over (DC, slot)
// ranges on the optional worker budget — the site models are pure functions
// of time and every (DC, slot) range owns a disjoint segment of the tables,
// so any worker count produces identical bytes; nil compiles serially.
func CompileEnvironment(fleet dc.Fleet, horizon timeutil.Horizon, fineStepSec float64, workers *par.Budget) *Environment {
	if horizon.Slots == 0 {
		horizon = timeutil.Week()
	}
	dt := ResolveFineStep(fineStepSec)
	steps := 0
	for t := 0.0; t < timeutil.SlotSeconds; t += dt {
		steps++
	}
	slots := int(horizon.Slots)
	e := &Environment{
		dt:    dt,
		steps: steps,
		slots: horizon.Slots,
		fleet: fleetFingerprint(fleet),
		pue:   make([][]float64, len(fleet)),
		renew: make([][]units.Power, len(fleet)),
		pv:    make([][]units.Energy, len(fleet)),
	}
	for i := range fleet {
		e.pue[i] = make([]float64, slots*steps)
		e.renew[i] = make([]units.Power, slots*steps)
		e.pv[i] = make([]units.Energy, slots)
	}
	const slotGrain = 4 // slots per shard, across the dc-major flattening
	par.For(workers, len(fleet)*slots, slotGrain, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			i := x / slots
			sl := timeutil.Slot(x % slots)
			d := fleet[i]
			base := int(sl) * steps
			start := sl.Seconds()
			k := 0
			// Replicates the simulator's fine loop bit-for-bit, including
			// its floating-point time accumulation.
			for t := 0.0; t < timeutil.SlotSeconds; t += dt {
				at := start + t
				e.pue[i][base+k] = d.Cooling.PUEAt(at)
				e.renew[i][base+k] = d.Plant.PowerAt(at)
				k++
			}
			e.pv[i][sl] = d.Plant.SlotEnergy(sl)
		}
	})
	return e
}

// matches reports whether the table was compiled for this fleet and covers
// a run over the given horizon and fine step.
func (e *Environment) matches(fleet dc.Fleet, slots timeutil.Slot, dt float64) bool {
	return e != nil && len(e.pue) == len(fleet) && e.slots >= slots && e.dt == dt &&
		e.fleet == fleetFingerprint(fleet)
}
