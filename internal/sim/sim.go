// Package sim is the discrete-time simulator that evaluates a placement
// policy over the experiment horizon, reproducing the paper's measurement
// loop (Sect. V):
//
//   - once per hour slot, the global controller re-places the fleet's VMs
//     and the local controllers pack each DC's servers;
//   - every fine step (5 s in the paper), server utilizations are sampled,
//     IT power is scaled by the site's instantaneous PUE, and the green
//     controller splits the facility demand across renewable, battery and
//     grid, accruing operational cost at the current tariff;
//   - per slot, the actual inter-VM volumes are aggregated per DC pair
//     (plus migration images) and the worst-case destination latency of
//     Eq. 1 becomes the slot's response-time sample per DC.
//
// The same workload, network conditions and green controllers are replayed
// for every policy (all randomness is seed-derived), so metric differences
// are attributable to placement alone — the paper's comparison setup.
//
// The hot loops are allocation-free in steady state: per-slot containers
// (profile sets, volume matrices, placement buffers) are reused across
// slots, and when the workload is a compiled trace (trace.Compile) the
// per-step utilization reads become slice indexing instead of trace
// synthesis.
package sim

import (
	"context"
	"fmt"
	"sync"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/fault"
	"geovmp/internal/metrics"
	"geovmp/internal/network"
	"geovmp/internal/par"
	"geovmp/internal/policy"
	"geovmp/internal/rng"
	"geovmp/internal/storage"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// Defaults applied by Scenario for unset (zero) knobs. Zero means "unset"
// for every defaulted field; fields whose zero value is also a meaningful
// override accept a negative value to select it, mirroring WarmupSlots:
// QoS < 0 disables the migration guarantee (the latency budget spans the
// whole slot) and ProfileSamples < 0 gives the controllers empty profiles.
// FineStepSec has no meaningful zero override — a non-positive step cannot
// be simulated — so any value <= 0 selects the default.
const (
	DefaultQoS            = 0.98
	DefaultProfileSamples = 12
	DefaultFineStepSec    = 5
	DefaultWarmupSlots    = 6
)

// ResolveQoS maps a Scenario.QoS field value to the effective guarantee:
// the default when unset (0), no guarantee (0) when negative.
func ResolveQoS(q float64) float64 {
	switch {
	case q == 0:
		return DefaultQoS
	case q < 0:
		return 0
	}
	return q
}

// ResolveProfileSamples maps a Scenario.ProfileSamples field value to the
// effective per-slot profile length: the default when unset (0), zero
// samples when negative.
func ResolveProfileSamples(n int) int {
	switch {
	case n == 0:
		return DefaultProfileSamples
	case n < 0:
		return 0
	}
	return n
}

// ResolveFineStep maps a Scenario.FineStepSec field value to the effective
// green-controller period; any non-positive value selects the default.
func ResolveFineStep(sec float64) float64 {
	if sec <= 0 {
		return DefaultFineStepSec
	}
	return sec
}

// Scenario bundles everything a run needs. Build one per policy run (DC
// battery state and forecaster history are mutable); the workload may be
// shared between runs — it only needs to be safe for concurrent readers,
// which both the synthetic Workload and a compiled trace are.
type Scenario struct {
	Name     string
	Fleet    dc.Fleet
	Workload trace.Source
	Topo     *network.Topology
	Horizon  timeutil.Horizon
	Seed     uint64
	// QoS is the migration latency guarantee (default 0.98; negative
	// disables it — the per-link budget spans the whole slot).
	QoS float64
	// ProfileSamples is the per-slot downsampled profile length (default
	// 12; negative gives the controllers empty profiles).
	ProfileSamples int
	// FineStepSec is the green-controller step (default 5, the paper's;
	// any non-positive value selects the default).
	FineStepSec float64
	// WarmupSlots are simulated but excluded from every metric: the first
	// slots of a cold-started fleet are placement transients no real
	// week-long deployment would exhibit (default 6, capped at half the
	// horizon; negative disables).
	WarmupSlots int
	// Epochs splits the horizon into that many rolling-horizon epochs
	// (see internal/sim/epoch.go): the policy is signalled at each interior
	// boundary to re-optimize for the new regime, the per-epoch migration
	// budget resets, and Result gains a per-epoch breakdown. Epochs <= 1
	// with a zero Migration budget is the static path, byte-identical to a
	// scenario without these fields.
	Epochs int
	// Migration parameterizes the rolling engine's migration accounting:
	// per-epoch move budget, per-GB transfer energy, per-move downtime.
	// Setting any field activates the engine even at Epochs <= 1.
	Migration MigrationBudget
	// Env optionally supplies the fleet's precomputed PUE / renewable / PV
	// series (CompileEnvironment). Runs whose horizon and fine step the
	// table covers read it instead of re-evaluating the site models; a
	// mismatched or nil table is ignored. The experiment engine shares one
	// per scenario x seed.
	Env *Environment
	// Workers optionally lends the run extra goroutines for its sharded
	// passes (the fine-plan evaluation, and the controller's embedding and
	// clustering via policy.Input). The experiment engine installs the
	// sweep's shared worker budget here so cells x intra-cell shards never
	// exceed the configured parallelism; nil runs everything serially.
	// Results are bit-identical at any worker count.
	Workers *par.Budget
	// FastMath opts controllers into their approximate fast-numeric paths
	// (quantized correlation kernel, epoch-amortized embedding caches);
	// default off leaves every run bit-identical to prior releases.
	FastMath bool
	// Faults injects a deterministic failure schedule (internal/fault):
	// server and whole-DC outages, link degradations, PV dropouts. The
	// zero config runs the exact fault-free pipeline, byte for byte.
	Faults fault.Config
	// Storage attaches the replicated/erasure-coded data-placement model
	// (internal/storage): under faults, shard losses yield repair traffic
	// in the volume matrix and an analytic data-loss risk in the result.
	Storage storage.Config
}

func (sc *Scenario) applyDefaults() {
	sc.QoS = ResolveQoS(sc.QoS)
	sc.ProfileSamples = ResolveProfileSamples(sc.ProfileSamples)
	sc.FineStepSec = ResolveFineStep(sc.FineStepSec)
	if sc.Horizon.Slots == 0 {
		sc.Horizon = timeutil.Week()
	}
	switch {
	case sc.WarmupSlots == 0:
		sc.WarmupSlots = DefaultWarmupSlots
	case sc.WarmupSlots < 0:
		sc.WarmupSlots = 0
	}
	if timeutil.Slot(sc.WarmupSlots) > sc.Horizon.Slots/2 {
		sc.WarmupSlots = int(sc.Horizon.Slots / 2)
	}
}

// Validate checks the scenario wiring.
func (sc *Scenario) Validate() error {
	if sc.Workload == nil {
		return fmt.Errorf("sim: nil workload")
	}
	if err := sc.Fleet.Validate(); err != nil {
		return err
	}
	if sc.Topo == nil {
		return fmt.Errorf("sim: nil topology")
	}
	if err := sc.Topo.Validate(); err != nil {
		return err
	}
	if sc.Topo.N != len(sc.Fleet) {
		return fmt.Errorf("sim: topology has %d DCs, fleet %d", sc.Topo.N, len(sc.Fleet))
	}
	if sc.Horizon.Slots > sc.Workload.Slots() {
		return fmt.Errorf("sim: horizon %d slots exceeds workload %d", sc.Horizon.Slots, sc.Workload.Slots())
	}
	if sc.Epochs < 0 {
		return fmt.Errorf("sim: negative epoch count %d", sc.Epochs)
	}
	if err := sc.Faults.Validate(len(sc.Fleet)); err != nil {
		return err
	}
	if err := sc.Storage.Validate(len(sc.Fleet)); err != nil {
		return err
	}
	return nil
}

// Result aggregates one run's metrics.
type Result struct {
	Policy   string
	Scenario string

	// Operational cost (Fig. 1).
	OpCost     units.Money
	CostPerDC  []units.Money
	CostSeries metrics.Series // EUR per slot

	// Energy (Fig. 2): facility energy consumed by the DCs.
	TotalEnergy  units.Energy
	EnergyPerDC  []units.Energy
	EnergySeries metrics.Series // GJ per slot, fleet-wide

	// Response time (Fig. 3): one sample per (slot, destination DC).
	RespSamples []float64
	RespSummary metrics.Summary

	// Migration behaviour.
	Migrations    int
	MigRejected   int
	MigratedBytes units.DataSize

	// Rolling-horizon breakdown (nil on the static path): one entry per
	// epoch, plus the charged migration overhead totals. MigEnergy is
	// included in TotalEnergy/EnergyPerDC and its cost in OpCost, but not
	// in the grid/renewable/battery sourcing fields — the sourcing
	// decomposition of a rolling cell closes as grid + renewable +
	// battery + MigEnergy (see MigrationBudget.EnergyPerGB).
	Epochs         []EpochStat
	MigEnergy      units.Energy
	MigDowntimeSec float64

	// Survivability (zero on fault-free runs): emergency evacuations
	// executed, VM-slots stranded on dead DCs, shard-rebuild traffic
	// pushed through the backbone, and the mean per-slot probability of
	// data loss under the storage model.
	Evacuations     int
	StrandedVMSlots int
	RepairBytes     units.DataSize
	DataLossProb    float64

	// Traffic locality: application bytes exchanged within a DC vs across
	// DCs (the balance the network-aware policies fight over).
	IntraBytes units.DataSize
	CrossBytes units.DataSize

	// Consolidation.
	MeanActiveServers float64
	Overflowed        int
	// ThrottledCoreSec accumulates demand the packed servers could not
	// serve (capacity shortfall x seconds) — implicit performance loss.
	ThrottledCoreSec float64

	// Energy sourcing.
	GridEnergy    units.Energy
	RenewableUsed units.Energy
	RenewableLost units.Energy
	BatteryOut    units.Energy

	// FinalPlacement maps every VM active in the last slot to its DC — the
	// end-state snapshot used by visualization tools.
	FinalPlacement map[int]int
}

// WorstResp returns the worst-case response time — the paper's SLA metric.
func (r *Result) WorstResp() float64 { return r.RespSummary.Max() }

// MeanResp returns the average response time.
func (r *Result) MeanResp() float64 { return r.RespSummary.Mean() }

// Run simulates pol over sc.
func Run(sc *Scenario, pol policy.Policy) (*Result, error) {
	return RunCtx(context.Background(), sc, pol)
}

// RunCtx simulates pol over sc, checking ctx once per hour slot so a
// cancelled sweep abandons the run promptly instead of finishing the
// horizon. A cancelled run returns ctx's error and no result.
func RunCtx(ctx context.Context, sc *Scenario, pol policy.Policy) (*Result, error) {
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w := sc.Workload
	fleet := sc.Fleet
	n := len(fleet)
	numVMs := w.NumVMs()
	net := network.NewState(sc.Topo, rng.New(sc.Seed).Derive("network"))
	constraint := (1 - sc.QoS) * timeutil.SlotSeconds

	// Compiled fast paths: profile rows shared without copying when the
	// sampling matches, and fine-step utilization rows when the fine table
	// matches the scenario's step. Out-of-core tables serve the same rows
	// through per-run chunk cursors, advanced once per slot below; the
	// streamed values are byte-identical to the resident tables'.
	compiled, _ := w.(*trace.Compiled)
	useProfiles := compiled != nil && compiled.Samples() == sc.ProfileSamples
	fineSteps := 0
	var fineCur *trace.FineCursor
	var profCur *trace.ProfileCursor
	if compiled != nil {
		if dt, steps := compiled.FineParams(); steps > 0 && dt == sc.FineStepSec {
			fineSteps = steps
			fineCur = compiled.NewFineCursor(sc.Workers)
		}
		if useProfiles {
			profCur = compiled.NewProfileCursor(sc.Workers)
		}
	}
	env := sc.Env
	if !env.matches(fleet, sc.Horizon.Slots, sc.FineStepSec) {
		env = nil
	}

	res := &Result{
		Policy:      pol.Name(),
		Scenario:    sc.Name,
		CostPerDC:   make([]units.Money, n),
		EnergyPerDC: make([]units.Energy, n),
	}
	res.CostSeries.Name = "cost-eur"
	res.EnergySeries.Name = "energy-gj"
	if measuredSlots := int(sc.Horizon.Slots) - sc.WarmupSlots; measuredSlots > 0 {
		res.RespSamples = make([]float64, 0, measuredSlots*n)
	}

	current := make(map[int]int) // VM -> DC, surviving across slots
	lastEnergy := make([]units.Energy, n)
	var activeServerSum float64

	// Per-slot containers, allocated once and reused across slots.
	var prevIDs []int
	activeSet := make([]bool, numVMs)
	ps := correlation.NewProfileSet(sc.ProfileSamples)
	dm := correlation.NewDataMatrix()
	vmEnergy := make([]float64, numVMs)
	images := make([]units.DataSize, numVMs)
	for id := range images {
		images[id] = w.Image(id)
	}
	perCore := float64(fleet[0].Model.MarginalPower() + fleet[0].Model.IdleShare())
	in := &policy.Input{
		Current:       current,
		Profiles:      ps,
		Volumes:       dm,
		VMEnergy:      vmEnergy,
		Image:         images,
		DCs:           fleet,
		Prices:        make([]units.Price, n),
		RenewForecast: make([]units.Energy, n),
		BatteryAvail:  make([]units.Energy, n),
		LastEnergy:    make([]units.Energy, n),
		Net:           net,
		Constraint:    constraint,
		Workers:       sc.Workers,
		FastMath:      sc.FastMath,
	}
	byDC := make([][]int, n)
	allocs := make([]allocView, n)
	slotEnergy := make([]units.Energy, n)
	vol := make([][]units.DataSize, n)
	for i := range vol {
		vol[i] = make([]units.DataSize, n)
	}
	var fine *finePlan
	if fineSteps > 0 {
		fine = newFinePlan(n, fineSteps, sc.FineStepSec)
	}
	// Rolling-horizon engine state; nil on the static path, which must stay
	// byte-identical to the pre-epoch simulator.
	epoch := newEpochRun(sc, n)
	// Fault engine state; nil on fault-free runs, which must likewise
	// stay byte-identical.
	fr := newFaultRun(sc, n)

	for sl := timeutil.Slot(0); sl < sc.Horizon.Slots; sl++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if epoch != nil {
			epoch.startSlot(sl, pol)
		}
		if fr != nil {
			fr.startSlot(sl, fleet, net)
			in.Health = fr.health
		}
		ids := w.ActiveVMs(sl)
		// Swap the active set to this slot's ids and clear the previous
		// slot's per-VM tables. Ids index dense numVMs-sized tables, so an
		// out-of-contract source surfaces as an error, not a panic.
		for _, id := range prevIDs {
			activeSet[id] = false
			vmEnergy[id] = 0
		}
		for _, id := range ids {
			if id < 0 || id >= numVMs {
				return nil, fmt.Errorf("sim: workload ActiveVMs(%d) returned id %d outside [0, %d)", sl, id, numVMs)
			}
			activeSet[id] = true
		}
		prevIDs = ids
		// Drop departed VMs from the carried placement.
		for id := range current {
			if !activeSet[id] {
				delete(current, id)
			}
		}

		// Observed information: the previous interval's loads and volumes
		// (slot 0 bootstraps from itself).
		obsSlot := sl
		if sl > 0 {
			obsSlot = sl - 1
		}
		ps.Reset()
		if useProfiles {
			if profCur != nil {
				profCur.Advance(obsSlot)
			}
			for _, id := range ids {
				var row []float64
				if profCur != nil {
					row = profCur.ProfileRow(id, obsSlot)
				} else {
					row = compiled.ProfileRow(id, obsSlot)
				}
				if row != nil {
					ps.Add(id, row)
				} else {
					ps.Add(id, w.SlotProfile(id, obsSlot, sc.ProfileSamples))
				}
			}
		} else {
			for _, id := range ids {
				ps.Add(id, w.SlotProfile(id, obsSlot, sc.ProfileSamples))
			}
		}
		dm.Reset()
		for _, e := range w.PlannedVolumes(obsSlot, sl) {
			dm.Add(e.From, e.To, e.Vol)
		}

		// Per-VM energy prediction for the coming slot: mean utilization
		// times the fleet server's fully-loaded per-core power, times the
		// mean PUE across sites.
		var pue float64
		for _, d := range fleet {
			pue += d.Cooling.MeanPUEOverSlot(sl)
		}
		pue /= float64(n)
		for _, id := range ids {
			vmEnergy[id] = ps.Mean(id) * perCore * pue * timeutil.SlotSeconds
		}

		in.Slot = sl
		in.ActiveVMs = ids
		for i, d := range fleet {
			in.Prices[i] = d.Tariff.AtSlot(sl)
			in.RenewForecast[i] = d.Forecast.Forecast(sl)
			in.BatteryAvail[i] = d.Bank.UsableAC()
			in.LastEnergy[i] = lastEnergy[i]
		}

		measured := sl >= timeutil.Slot(sc.WarmupSlots)
		net.Reroll()
		placement := pol.Place(in)
		if epoch != nil {
			placement = epoch.revise(placement, in, net)
			epoch.moves += len(placement.Moves)
		}
		if fr != nil {
			placement = fr.evacuate(placement, in, net, res, measured)
		}
		for i := range byDC {
			byDC[i] = byDC[i][:0]
		}
		for _, id := range ids {
			dcIdx, ok := placement.DCOf[id]
			if !ok || dcIdx < 0 || dcIdx >= n {
				return nil, fmt.Errorf("sim: policy %s left VM %d unplaced at slot %d", pol.Name(), id, sl)
			}
			byDC[dcIdx] = append(byDC[dcIdx], id)
		}
		if measured {
			res.Migrations += len(placement.Moves)
			res.MigRejected += placement.Rejected
			for _, m := range placement.Moves {
				res.MigratedBytes += m.Image
			}
		}

		// Local phase.
		for i, d := range fleet {
			a := pol.Allocate(d, byDC[i], ps)
			if measured {
				res.Overflowed += a.Overflowed
				activeServerSum += float64(a.Active)
			}
			allocs[i].reset(a)
		}

		// Fine loop over [sl, sl+1). With a compiled trace the per-step IT
		// power is evaluated in one vectorized pass over the fine rows;
		// otherwise each step synthesizes utilizations on demand. Both
		// paths accumulate in the same order, so results are identical.
		if fine != nil {
			var rows trace.FineRows = compiled
			if fineCur != nil {
				fineCur.Advance(sl)
				rows = fineCur
			}
			fine.evaluate(rows, compiled, fleet, allocs, sl, sc.Workers)
		}
		clear(slotEnergy)
		var slotCost units.Money
		dt := sc.FineStepSec
		start := sl.Seconds()
		envBase := 0
		if env != nil {
			envBase = int(sl) * env.steps
		}
		k := 0
		for t := 0.0; t < timeutil.SlotSeconds; t += dt {
			at := start + t
			step := timeutil.Step(int64(at) / timeutil.StepSeconds)
			for i, d := range fleet {
				var it units.Power
				var throttled float64
				if fine != nil {
					it, throttled = fine.itPower[i][k], fine.throttled[i][k]
				} else {
					it, throttled = allocs[i].itPowerAt(w, d, step)
				}
				var pue float64
				var renew units.Power
				if env != nil {
					pue = env.pue[i][envBase+k]
					renew = env.renew[i][envBase+k]
				} else {
					pue = d.Cooling.PUEAt(at)
					renew = d.Plant.PowerAt(at)
				}
				if fr != nil {
					// PV dropout: the plant produces, the DC cannot take it.
					renew = units.Power(float64(renew) * fr.pv[i])
				}
				facility := units.Power(float64(it) * pue)
				dec := d.Green.Step(facility, renew, at, dt)
				slotEnergy[i] += dec.Demand
				if !measured {
					continue
				}
				res.ThrottledCoreSec += throttled * dt
				slotCost += dec.Cost
				res.CostPerDC[i] += dec.Cost
				res.GridEnergy += dec.Grid()
				res.RenewableUsed += dec.RenewableUsed
				res.RenewableLost += dec.RenewableLost
				res.BatteryOut += dec.BatteryOut
			}
			k++
		}
		if epoch != nil {
			// Charge the slot's executed moves: transfer energy lands in the
			// per-DC slot energy (so the totals and the demand predictor see
			// it) priced at the current tariffs, downtime in the per-DC
			// response adjustment below.
			slotCost += epoch.chargeMoves(res, placement.Moves, in.Prices, slotEnergy, measured)
		}
		var slotTotal units.Energy
		for i := range fleet {
			lastEnergy[i] = slotEnergy[i]
			if measured {
				res.EnergyPerDC[i] += slotEnergy[i]
			}
			slotTotal += slotEnergy[i]
		}
		if measured {
			res.TotalEnergy += slotTotal
			res.OpCost += slotCost
			res.CostSeries.Append(float64(sl), float64(slotCost))
			res.EnergySeries.Append(float64(sl), slotTotal.GJ())
		}

		// Response time of the slot: actual volumes aggregated by DC pair
		// (Eq. 1). Migration images are *not* added here — the paper's QoS
		// constraint already bounds them to 2% of the slot, and response
		// time is defined as "the amount of time [VMs] have to wait for
		// data from other VMs", i.e. application traffic only.
		for i := range vol {
			clear(vol[i])
		}
		for _, e := range w.Volumes(sl) {
			// Range-check before indexing: replayed CSV traces may name
			// out-of-range endpoints.
			if e.From < 0 || e.From >= numVMs || e.To < 0 || e.To >= numVMs {
				continue
			}
			if !activeSet[e.From] || !activeSet[e.To] {
				continue
			}
			from, to := placement.DCOf[e.From], placement.DCOf[e.To]
			vol[from][to] += e.Vol
			if !measured {
				continue
			}
			if from == to {
				res.IntraBytes += e.Vol
			} else {
				res.CrossBytes += e.Vol
			}
		}
		if fr != nil {
			// Shard rebuilds flow through the same volume matrix as user
			// traffic, so repair congestion lands in Eq. 1's worst case.
			fr.applyRepair(ids, vol, res, measured)
		}
		if measured {
			for j := 0; j < n; j++ {
				resp := net.DestLatency(j, vol)
				if epoch != nil {
					// Arriving migrations pause their VMs: the destination's
					// slot sample carries the charged downtime.
					resp += epoch.downtime[j]
				}
				if fr != nil {
					// Stranded VMs are unreachable for the slot.
					resp += fr.downtime[j]
				}
				res.RespSamples = append(res.RespSamples, resp)
				res.RespSummary.Add(resp)
			}
			if epoch != nil {
				epoch.accumulate(slotCost, slotTotal, placement.Moves, placement.Rejected)
			}
		}

		// Learn: forecasters see the slot's realized PV intake.
		for i, d := range fleet {
			pvE := units.Energy(0)
			if env != nil {
				pvE = env.pv[i][sl]
			} else {
				pvE = d.Plant.SlotEnergy(sl)
			}
			if fr != nil {
				pvE = units.Energy(float64(pvE) * fr.pv[i])
			}
			d.Forecast.Observe(sl, pvE)
		}

		// Carry placement.
		for id, dcIdx := range placement.DCOf {
			current[id] = dcIdx
		}
	}
	if measuredSlots := int(sc.Horizon.Slots) - sc.WarmupSlots; measuredSlots > 0 {
		res.MeanActiveServers = activeServerSum / float64(measuredSlots)
	}
	if epoch != nil {
		res.Epochs = epoch.stats
	}
	if fr != nil {
		res.DataLossProb = fr.lossProb()
		// Restore the fleet's healthy sizes: the caller's scenario object
		// outlives the run.
		for i, d := range fleet {
			d.Servers = fr.baseServers[i]
		}
		net.SetDegrade(nil)
	}
	res.FinalPlacement = make(map[int]int, len(current))
	for id, d := range current {
		res.FinalPlacement[id] = d
	}
	return res, nil
}

// allocView caches an allocation in a form the fine loop can evaluate
// quickly: per server, the member VM ids and the DVFS level.
type allocView struct {
	servers []serverView
}

type serverView struct {
	vms   []int
	level int
}

// reset refills the view in place, reusing the servers slice.
func (v *allocView) reset(a alloc.Result) {
	if cap(v.servers) < len(a.Servers) {
		v.servers = make([]serverView, len(a.Servers))
	}
	v.servers = v.servers[:len(a.Servers)]
	for s, srv := range a.Servers {
		v.servers[s] = serverView{vms: srv.VMs, level: srv.Level}
	}
}

// itPowerAt returns the DC's IT power at the fine step plus the throttled
// demand (reference cores beyond the packed servers' capacity) — the
// synthesize-on-demand path for non-compiled workloads.
func (v *allocView) itPowerAt(w trace.Source, d *dc.DC, step timeutil.Step) (units.Power, float64) {
	var total units.Power
	var throttled float64
	for _, srv := range v.servers {
		var load float64
		for _, id := range srv.vms {
			load += w.Util(id, step)
		}
		capS := d.Model.Capacity(srv.level)
		if load > capS {
			throttled += load - capS
		}
		total += d.Model.Power(srv.level, load)
	}
	return total, throttled
}

// finePlan holds the per-DC per-step IT power and throttled demand of one
// slot, evaluated in a single pass over the compiled utilization rows. The
// buffers are reused across slots; the per-server load scratch lives in a
// pool because the per-DC evaluations may run on concurrent shards.
type finePlan struct {
	steps     int
	dt        float64
	itPower   [][]units.Power // [dc][step]
	throttled [][]float64     // [dc][step]
	srvLoad   sync.Pool       // *[]float64, [step] scratch for one server
}

func newFinePlan(n, steps int, dt float64) *finePlan {
	p := &finePlan{
		steps:     steps,
		dt:        dt,
		itPower:   make([][]units.Power, n),
		throttled: make([][]float64, n),
	}
	p.srvLoad.New = func() any {
		buf := make([]float64, steps)
		return &buf
	}
	for i := 0; i < n; i++ {
		p.itPower[i] = make([]units.Power, steps)
		p.throttled[i] = make([]float64, steps)
	}
	return p
}

// evaluate fills the plan for slot sl. Per server it accumulates the member
// VMs' fine rows — read from rows, the resident table or a chunk cursor
// positioned on sl — then folds capacity and the power model per step: the
// same additions in the same order as the per-step itPowerAt path, so the
// two produce bit-identical results. DCs are sharded over the run's worker
// budget: each shard writes only its own DCs' rows, so any worker count
// produces the serial result.
func (p *finePlan) evaluate(rows trace.FineRows, c *trace.Compiled, fleet dc.Fleet, allocs []allocView, sl timeutil.Slot, workers *par.Budget) {
	par.For(workers, len(fleet), 1, func(lo, hi int) {
		buf := p.srvLoad.Get().(*[]float64)
		load := *buf
		defer p.srvLoad.Put(buf)
		for i := lo; i < hi; i++ {
			d := fleet[i]
			itp := p.itPower[i]
			thr := p.throttled[i]
			clear(itp)
			clear(thr)
			for _, srv := range allocs[i].servers {
				clear(load)
				for _, id := range srv.vms {
					row := rows.FineRow(id, sl)
					if row == nil {
						// A VM the table does not cover (a policy allocating
						// a never-active id): read the source at the exact
						// steps the fine loop derives.
						start := sl.Seconds()
						k := 0
						for t := 0.0; t < timeutil.SlotSeconds; t += p.dt {
							step := timeutil.Step(int64(start+t) / timeutil.StepSeconds)
							load[k] += c.Util(id, step)
							k++
						}
						continue
					}
					for k := range load {
						load[k] += row[k]
					}
				}
				capS := d.Model.Capacity(srv.level)
				for k := range load {
					if load[k] > capS {
						thr[k] += load[k] - capS
					}
					itp[k] += d.Model.Power(srv.level, load[k])
				}
			}
		}
	})
}
