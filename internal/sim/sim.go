// Package sim is the discrete-time simulator that evaluates a placement
// policy over the experiment horizon, reproducing the paper's measurement
// loop (Sect. V):
//
//   - once per hour slot, the global controller re-places the fleet's VMs
//     and the local controllers pack each DC's servers;
//   - every fine step (5 s in the paper), server utilizations are sampled,
//     IT power is scaled by the site's instantaneous PUE, and the green
//     controller splits the facility demand across renewable, battery and
//     grid, accruing operational cost at the current tariff;
//   - per slot, the actual inter-VM volumes are aggregated per DC pair
//     (plus migration images) and the worst-case destination latency of
//     Eq. 1 becomes the slot's response-time sample per DC.
//
// The same workload, network conditions and green controllers are replayed
// for every policy (all randomness is seed-derived), so metric differences
// are attributable to placement alone — the paper's comparison setup.
package sim

import (
	"context"
	"fmt"

	"geovmp/internal/alloc"
	"geovmp/internal/correlation"
	"geovmp/internal/dc"
	"geovmp/internal/metrics"
	"geovmp/internal/network"
	"geovmp/internal/policy"
	"geovmp/internal/rng"
	"geovmp/internal/timeutil"
	"geovmp/internal/trace"
	"geovmp/internal/units"
)

// Scenario bundles everything a run needs. Build one per policy run (DC
// battery state and forecaster history are mutable).
type Scenario struct {
	Name           string
	Fleet          dc.Fleet
	Workload       trace.Source
	Topo           *network.Topology
	Horizon        timeutil.Horizon
	Seed           uint64
	QoS            float64 // migration QoS guarantee (default 0.98)
	ProfileSamples int     // per-slot downsampled profile length (default 12)
	FineStepSec    float64 // green-controller step (default 5, the paper's)
	// WarmupSlots are simulated but excluded from every metric: the first
	// slots of a cold-started fleet are placement transients no real
	// week-long deployment would exhibit (default 6, capped at half the
	// horizon; negative disables).
	WarmupSlots int
}

func (sc *Scenario) applyDefaults() {
	if sc.QoS == 0 {
		sc.QoS = 0.98
	}
	if sc.ProfileSamples == 0 {
		sc.ProfileSamples = 12
	}
	if sc.FineStepSec == 0 {
		sc.FineStepSec = 5
	}
	if sc.Horizon.Slots == 0 {
		sc.Horizon = timeutil.Week()
	}
	switch {
	case sc.WarmupSlots == 0:
		sc.WarmupSlots = 6
	case sc.WarmupSlots < 0:
		sc.WarmupSlots = 0
	}
	if timeutil.Slot(sc.WarmupSlots) > sc.Horizon.Slots/2 {
		sc.WarmupSlots = int(sc.Horizon.Slots / 2)
	}
}

// Validate checks the scenario wiring.
func (sc *Scenario) Validate() error {
	if sc.Workload == nil {
		return fmt.Errorf("sim: nil workload")
	}
	if err := sc.Fleet.Validate(); err != nil {
		return err
	}
	if sc.Topo == nil {
		return fmt.Errorf("sim: nil topology")
	}
	if err := sc.Topo.Validate(); err != nil {
		return err
	}
	if sc.Topo.N != len(sc.Fleet) {
		return fmt.Errorf("sim: topology has %d DCs, fleet %d", sc.Topo.N, len(sc.Fleet))
	}
	if sc.Horizon.Slots > sc.Workload.Slots() {
		return fmt.Errorf("sim: horizon %d slots exceeds workload %d", sc.Horizon.Slots, sc.Workload.Slots())
	}
	return nil
}

// Result aggregates one run's metrics.
type Result struct {
	Policy   string
	Scenario string

	// Operational cost (Fig. 1).
	OpCost     units.Money
	CostPerDC  []units.Money
	CostSeries metrics.Series // EUR per slot

	// Energy (Fig. 2): facility energy consumed by the DCs.
	TotalEnergy  units.Energy
	EnergyPerDC  []units.Energy
	EnergySeries metrics.Series // GJ per slot, fleet-wide

	// Response time (Fig. 3): one sample per (slot, destination DC).
	RespSamples []float64
	RespSummary metrics.Summary

	// Migration behaviour.
	Migrations    int
	MigRejected   int
	MigratedBytes units.DataSize

	// Traffic locality: application bytes exchanged within a DC vs across
	// DCs (the balance the network-aware policies fight over).
	IntraBytes units.DataSize
	CrossBytes units.DataSize

	// Consolidation.
	MeanActiveServers float64
	Overflowed        int
	// ThrottledCoreSec accumulates demand the packed servers could not
	// serve (capacity shortfall x seconds) — implicit performance loss.
	ThrottledCoreSec float64

	// Energy sourcing.
	GridEnergy    units.Energy
	RenewableUsed units.Energy
	RenewableLost units.Energy
	BatteryOut    units.Energy

	// FinalPlacement maps every VM active in the last slot to its DC — the
	// end-state snapshot used by visualization tools.
	FinalPlacement map[int]int
}

// WorstResp returns the worst-case response time — the paper's SLA metric.
func (r *Result) WorstResp() float64 { return r.RespSummary.Max() }

// MeanResp returns the average response time.
func (r *Result) MeanResp() float64 { return r.RespSummary.Mean() }

// Run simulates pol over sc.
func Run(sc *Scenario, pol policy.Policy) (*Result, error) {
	return RunCtx(context.Background(), sc, pol)
}

// RunCtx simulates pol over sc, checking ctx once per hour slot so a
// cancelled sweep abandons the run promptly instead of finishing the
// horizon. A cancelled run returns ctx's error and no result.
func RunCtx(ctx context.Context, sc *Scenario, pol policy.Policy) (*Result, error) {
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w := sc.Workload
	fleet := sc.Fleet
	n := len(fleet)
	net := network.NewState(sc.Topo, rng.New(sc.Seed).Derive("network"))
	constraint := (1 - sc.QoS) * timeutil.SlotSeconds

	res := &Result{
		Policy:      pol.Name(),
		Scenario:    sc.Name,
		CostPerDC:   make([]units.Money, n),
		EnergyPerDC: make([]units.Energy, n),
	}
	res.CostSeries.Name = "cost-eur"
	res.EnergySeries.Name = "energy-gj"

	current := make(map[int]int) // VM -> DC, surviving across slots
	lastEnergy := make([]units.Energy, n)
	var activeServerSum float64

	for sl := timeutil.Slot(0); sl < sc.Horizon.Slots; sl++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ids := w.ActiveVMs(sl)
		// Drop departed VMs from the carried placement.
		activeSet := make(map[int]bool, len(ids))
		for _, id := range ids {
			activeSet[id] = true
		}
		for id := range current {
			if !activeSet[id] {
				delete(current, id)
			}
		}

		// Observed information: the previous interval's loads and volumes
		// (slot 0 bootstraps from itself).
		obsSlot := sl
		if sl > 0 {
			obsSlot = sl - 1
		}
		ps := correlation.NewProfileSet(sc.ProfileSamples)
		for _, id := range ids {
			ps.Add(id, w.SlotProfile(id, obsSlot, sc.ProfileSamples))
		}
		dm := correlation.NewDataMatrix()
		for _, e := range w.PlannedVolumes(obsSlot, sl) {
			dm.Add(e.From, e.To, e.Vol)
		}

		in := &policy.Input{
			Slot:          sl,
			ActiveVMs:     ids,
			Current:       current,
			Profiles:      ps,
			Volumes:       dm,
			VMEnergy:      vmEnergies(fleet, ids, ps, sl),
			Image:         imageSizes(w, ids),
			DCs:           fleet,
			Prices:        make([]units.Price, n),
			RenewForecast: make([]units.Energy, n),
			BatteryAvail:  make([]units.Energy, n),
			LastEnergy:    append([]units.Energy(nil), lastEnergy...),
			Net:           net,
			Constraint:    constraint,
		}
		for i, d := range fleet {
			in.Prices[i] = d.Tariff.AtSlot(sl)
			in.RenewForecast[i] = d.Forecast.Forecast(sl)
			in.BatteryAvail[i] = d.Bank.UsableAC()
		}

		measured := sl >= timeutil.Slot(sc.WarmupSlots)
		net.Reroll()
		placement := pol.Place(in)
		byDC := make([][]int, n)
		for _, id := range ids {
			dcIdx, ok := placement.DCOf[id]
			if !ok || dcIdx < 0 || dcIdx >= n {
				return nil, fmt.Errorf("sim: policy %s left VM %d unplaced at slot %d", pol.Name(), id, sl)
			}
			byDC[dcIdx] = append(byDC[dcIdx], id)
		}
		if measured {
			res.Migrations += len(placement.Moves)
			res.MigRejected += placement.Rejected
			for _, m := range placement.Moves {
				res.MigratedBytes += m.Image
			}
		}

		// Local phase.
		allocs := make([]allocView, n)
		for i, d := range fleet {
			a := pol.Allocate(d, byDC[i], ps)
			if measured {
				res.Overflowed += a.Overflowed
				activeServerSum += float64(a.Active)
			}
			allocs[i] = newAllocView(a)
		}

		// Fine loop over [sl, sl+1).
		slotEnergy := make([]units.Energy, n)
		var slotCost units.Money
		dt := sc.FineStepSec
		start := sl.Seconds()
		for t := 0.0; t < timeutil.SlotSeconds; t += dt {
			at := start + t
			step := timeutil.Step(int64(at) / timeutil.StepSeconds)
			for i, d := range fleet {
				it, throttled := allocs[i].itPower(w, d, step)
				pue := d.Cooling.PUEAt(at)
				facility := units.Power(float64(it) * pue)
				renew := d.Plant.PowerAt(at)
				dec := d.Green.Step(facility, renew, at, dt)
				slotEnergy[i] += dec.Demand
				if !measured {
					continue
				}
				res.ThrottledCoreSec += throttled * dt
				slotCost += dec.Cost
				res.CostPerDC[i] += dec.Cost
				res.GridEnergy += dec.Grid()
				res.RenewableUsed += dec.RenewableUsed
				res.RenewableLost += dec.RenewableLost
				res.BatteryOut += dec.BatteryOut
			}
		}
		var slotTotal units.Energy
		for i := range fleet {
			lastEnergy[i] = slotEnergy[i]
			if measured {
				res.EnergyPerDC[i] += slotEnergy[i]
			}
			slotTotal += slotEnergy[i]
		}
		if measured {
			res.TotalEnergy += slotTotal
			res.OpCost += slotCost
			res.CostSeries.Append(float64(sl), float64(slotCost))
			res.EnergySeries.Append(float64(sl), slotTotal.GJ())
		}

		// Response time of the slot: actual volumes aggregated by DC pair
		// (Eq. 1). Migration images are *not* added here — the paper's QoS
		// constraint already bounds them to 2% of the slot, and response
		// time is defined as "the amount of time [VMs] have to wait for
		// data from other VMs", i.e. application traffic only.
		vol := make([][]units.DataSize, n)
		for i := range vol {
			vol[i] = make([]units.DataSize, n)
		}
		for _, e := range w.Volumes(sl) {
			if !activeSet[e.From] || !activeSet[e.To] {
				continue
			}
			from, to := placement.DCOf[e.From], placement.DCOf[e.To]
			vol[from][to] += e.Vol
			if !measured {
				continue
			}
			if from == to {
				res.IntraBytes += e.Vol
			} else {
				res.CrossBytes += e.Vol
			}
		}
		if measured {
			for j := 0; j < n; j++ {
				resp := net.DestLatency(j, vol)
				res.RespSamples = append(res.RespSamples, resp)
				res.RespSummary.Add(resp)
			}
		}

		// Learn: forecasters see the slot's realized PV intake.
		for _, d := range fleet {
			d.Forecast.Observe(sl, d.Plant.SlotEnergy(sl))
		}

		// Carry placement.
		for id, dcIdx := range placement.DCOf {
			current[id] = dcIdx
		}
	}
	if measuredSlots := int(sc.Horizon.Slots) - sc.WarmupSlots; measuredSlots > 0 {
		res.MeanActiveServers = activeServerSum / float64(measuredSlots)
	}
	res.FinalPlacement = make(map[int]int, len(current))
	for id, d := range current {
		res.FinalPlacement[id] = d
	}
	return res, nil
}

// vmEnergies predicts each VM's next-slot facility energy: mean utilization
// times the fleet server's fully-loaded per-core power, times the mean PUE
// across sites.
func vmEnergies(fleet dc.Fleet, ids []int, ps *correlation.ProfileSet, sl timeutil.Slot) map[int]float64 {
	perCore := float64(fleet[0].Model.MarginalPower() + fleet[0].Model.IdleShare())
	var pue float64
	for _, d := range fleet {
		pue += d.Cooling.MeanPUEOverSlot(sl)
	}
	pue /= float64(len(fleet))
	out := make(map[int]float64, len(ids))
	for _, id := range ids {
		out[id] = ps.Mean(id) * perCore * pue * timeutil.SlotSeconds
	}
	return out
}

// imageSizes collects migration image sizes for the active VMs.
func imageSizes(w trace.Source, ids []int) map[int]units.DataSize {
	out := make(map[int]units.DataSize, len(ids))
	for _, id := range ids {
		out[id] = w.Image(id)
	}
	return out
}

// allocView caches an allocation in a form the fine loop can evaluate
// quickly: per server, the member VM ids and the DVFS level.
type allocView struct {
	servers []serverView
}

type serverView struct {
	vms   []int
	level int
}

func newAllocView(a alloc.Result) allocView {
	v := allocView{servers: make([]serverView, len(a.Servers))}
	for s, srv := range a.Servers {
		v.servers[s] = serverView{vms: srv.VMs, level: srv.Level}
	}
	return v
}

// itPower returns the DC's IT power at the fine step plus the throttled
// demand (reference cores beyond the packed servers' capacity).
func (v *allocView) itPower(w trace.Source, d *dc.DC, step timeutil.Step) (units.Power, float64) {
	var total units.Power
	var throttled float64
	for _, srv := range v.servers {
		var load float64
		for _, id := range srv.vms {
			load += w.Util(id, step)
		}
		capS := d.Model.Capacity(srv.level)
		if load > capS {
			throttled += load - capS
		}
		total += d.Model.Power(srv.level, load)
	}
	return total, throttled
}
