// Rolling-horizon epoch support: the horizon is split into contiguous
// epochs, the policy is signalled at every interior boundary so it can
// re-optimize for the new workload regime, executed migrations are revised
// under a per-epoch move budget (internal/migrate, driven by the engine for
// every policy, baselines included), and each move's transfer energy and
// service downtime are charged into the per-slot accounting so energy, cost
// and QoS reflect actual moves — the standard dynamic-placement formulation
// (Xu et al., arXiv:1607.06269; Attaoui & Sabir, arXiv:1802.05113).
//
// The static path is untouched: a scenario with Epochs <= 1 and a zero
// MigrationBudget runs exactly the pre-epoch pipeline, byte for byte.

package sim

import (
	"math"

	"geovmp/internal/migrate"
	"geovmp/internal/network"
	"geovmp/internal/policy"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// Migration charging defaults, applied when the rolling-horizon engine is
// active and the corresponding MigrationBudget field is zero (negative
// disables, mirroring the scenario knobs' convention).
const (
	// DefaultMigEnergyPerGB is the facility energy charged per gigabyte of
	// migrated image, in joules: NIC, memory-copy and hypervisor overhead
	// on both endpoints, in the range live-migration measurement studies
	// report (~0.2-0.5 J per MB end to end).
	DefaultMigEnergyPerGB = 512.0
	// DefaultMigDowntimeSec is the stop-and-copy service pause charged per
	// executed move, in seconds.
	DefaultMigDowntimeSec = 0.5
)

// MigrationBudget parameterizes the rolling-horizon engine's migration
// accounting. The zero value means "engine defaults" for the charging
// fields and "unlimited" for the move budget; setting any field on an
// otherwise static scenario (Epochs <= 1) activates the engine with a
// single epoch spanning the horizon.
type MigrationBudget struct {
	// MaxMovesPerEpoch caps executed migrations per epoch: 0 is unlimited,
	// a positive value rejects wishes beyond it until the next boundary
	// resets the budget, and a negative value forbids migration entirely
	// (new VMs still place freely).
	MaxMovesPerEpoch int
	// EnergyPerGB is the facility energy charged per GB of image moved,
	// joules, split evenly between the source and destination DC (default
	// DefaultMigEnergyPerGB; negative disables the charge). The charge is
	// additive on top of the green controller's dispatch: it lands in the
	// facility totals (TotalEnergy, EnergyPerDC, the energy series) priced
	// at each DC's current tariff, but deliberately not in the
	// grid/renewable/battery sourcing split — for rolling cells the
	// decomposition closes as grid + renewable + battery + MigEnergy,
	// with MigEnergy reported separately (mig_energy_kwh in the JSON
	// export). Pricing at the grid tariff is the conservative bound.
	EnergyPerGB float64
	// DowntimeSec is the service pause charged per executed move, seconds,
	// added to the destination DC's slot response sample (default
	// DefaultMigDowntimeSec; negative disables the charge).
	DowntimeSec float64
}

// resolved maps the zero/negative conventions to effective charging values.
func (b MigrationBudget) resolved() MigrationBudget {
	switch {
	case b.EnergyPerGB == 0:
		b.EnergyPerGB = DefaultMigEnergyPerGB
	case b.EnergyPerGB < 0:
		b.EnergyPerGB = 0
	}
	switch {
	case b.DowntimeSec == 0:
		b.DowntimeSec = DefaultMigDowntimeSec
	case b.DowntimeSec < 0:
		b.DowntimeSec = 0
	}
	return b
}

// EpochStat is one epoch's slice of a rolling-horizon run. Like every other
// metric, it accumulates measured slots only (warmup slots are excluded),
// while StartSlot/EndSlot describe the epoch's full [start, end) window.
type EpochStat struct {
	Epoch     int
	StartSlot int
	EndSlot   int

	Cost   units.Money  // operational cost, incl. migration energy cost
	Energy units.Energy // facility energy, incl. migration energy

	Migrations     int
	MigRejected    int
	MigratedBytes  units.DataSize
	MigEnergy      units.Energy // charged migration overhead
	MigDowntimeSec float64      // charged service downtime
}

// EpochPlan splits a horizon of S slots into E contiguous epochs of
// near-equal length: epoch e spans [floor(e*S/E), floor((e+1)*S/E)). The
// zero plan (or any epochs < 1) collapses to a single epoch.
type EpochPlan struct {
	epochs int
	slots  timeutil.Slot
}

// NewEpochPlan builds a plan over `slots` slots. Epoch counts below 1 are
// clamped to 1, counts above the slot count to the slot count (an epoch is
// at least one slot).
func NewEpochPlan(epochs int, slots timeutil.Slot) EpochPlan {
	if epochs < 1 {
		epochs = 1
	}
	if slots > 0 && timeutil.Slot(epochs) > slots {
		epochs = int(slots)
	}
	return EpochPlan{epochs: epochs, slots: slots}
}

// Epochs returns the number of epochs in the plan.
func (p EpochPlan) Epochs() int {
	if p.epochs < 1 {
		return 1
	}
	return p.epochs
}

// Start returns the first slot of epoch e.
func (p EpochPlan) Start(e int) timeutil.Slot {
	return timeutil.Slot(int64(e) * int64(p.slots) / int64(p.Epochs()))
}

// End returns the exclusive end slot of epoch e.
func (p EpochPlan) End(e int) timeutil.Slot { return p.Start(e + 1) }

// EpochOf returns the epoch containing slot sl, clamped to the plan.
func (p EpochPlan) EpochOf(sl timeutil.Slot) int {
	if sl <= 0 || p.slots <= 0 {
		return 0
	}
	if sl >= p.slots {
		sl = p.slots - 1
	}
	// Inverse of Start's floor division: the largest e with Start(e) <= sl.
	return int(((int64(sl)+1)*int64(p.Epochs()) - 1) / int64(p.slots))
}

// epochRun is the per-run state of the rolling-horizon engine; nil on the
// static path.
type epochRun struct {
	plan    EpochPlan
	budget  MigrationBudget // caller's budget (MaxMovesPerEpoch semantics)
	costs   MigrationBudget // resolved charging values
	stats   []EpochStat
	current int
	moves   int // executed moves in the current epoch

	infCaps   []float64
	zeroLoads []float64
	downtime  []float64 // per-DC charged downtime of the current slot
	cands     []migrate.Candidate

	// The current slot's charged totals, filled by chargeMoves and folded
	// into the epoch stats by accumulate — one charging site, so the
	// headline counters and the per-epoch breakdown can never disagree.
	slotMigEnergy units.Energy
	slotMigDown   float64
}

// newEpochRun builds the engine state for a rolling scenario, or returns
// nil when sc runs the static path.
func newEpochRun(sc *Scenario, n int) *epochRun {
	if sc.Epochs <= 1 && sc.Migration == (MigrationBudget{}) {
		return nil
	}
	plan := NewEpochPlan(sc.Epochs, sc.Horizon.Slots)
	r := &epochRun{
		plan:      plan,
		budget:    sc.Migration,
		costs:     sc.Migration.resolved(),
		stats:     make([]EpochStat, plan.Epochs()),
		infCaps:   make([]float64, n),
		zeroLoads: make([]float64, n),
		downtime:  make([]float64, n),
	}
	for e := range r.stats {
		r.stats[e] = EpochStat{Epoch: e, StartSlot: int(plan.Start(e)), EndSlot: int(plan.End(e))}
	}
	for i := range r.infCaps {
		r.infCaps[i] = math.Inf(1)
	}
	return r
}

// startSlot advances the engine to sl's epoch, resetting the move budget
// and signalling EpochAware policies at each interior boundary crossed.
func (r *epochRun) startSlot(sl timeutil.Slot, pol policy.Policy) {
	for r.current+1 < r.plan.Epochs() && sl >= r.plan.Start(r.current+1) {
		r.current++
		r.moves = 0
		if ea, ok := pol.(policy.EpochAware); ok {
			ea.StartEpoch(r.current, r.plan.Start(r.current))
		}
	}
	clear(r.downtime)
}

// revise feeds the policy's executed moves through migrate.Run under the
// epoch's remaining move budget: wishes beyond the budget revert to their
// current DC and count as rejected. The latency constraint is re-checked
// against a fresh per-link table; since the policy already admitted these
// moves under the same per-link budget (with identical, purely
// slot-state-derived transfer times), the re-check never rejects — only
// the move budget does. Candidates keep the policy's submission order as
// their queue priority.
func (r *epochRun) revise(p policy.Placement, in *policy.Input, net *network.State) policy.Placement {
	if r.budget.MaxMovesPerEpoch == 0 || len(p.Moves) == 0 {
		return p
	}
	maxMoves := -1 // budget exhausted or migration forbidden: reject all
	if r.budget.MaxMovesPerEpoch > 0 && r.moves < r.budget.MaxMovesPerEpoch {
		maxMoves = r.budget.MaxMovesPerEpoch - r.moves
	}
	r.cands = r.cands[:0]
	for k, m := range p.Moves {
		r.cands = append(r.cands, migrate.Candidate{
			ID:      m.ID,
			Current: m.From,
			Target:  m.To,
			Load:    in.VMEnergy[m.ID],
			Image:   m.Image,
			Dist:    float64(k),
		})
	}
	mres := migrate.Run(r.cands, migrate.Config{
		NDC:        len(r.infCaps),
		Caps:       r.infCaps,
		Loads:      r.zeroLoads,
		Constraint: in.Constraint,
		Net:        net,
		MaxMoves:   maxMoves,
	})
	for id, d := range mres.Placement {
		p.DCOf[id] = d
	}
	p.Moves = mres.Moves
	p.Rejected += mres.Rejected
	return p
}

// chargeMoves accounts the slot's executed moves: transfer energy is added
// to the source and destination DCs' slot energy (feeding the facility
// totals and the controllers' demand predictor) and priced at each DC's
// current tariff, downtime accumulates per destination DC for the slot's
// response samples. It returns the slot's migration cost contribution;
// per-Result counters are updated only for measured slots, like every
// other metric.
func (r *epochRun) chargeMoves(res *Result, moves []migrate.Move, prices []units.Price, slotEnergy []units.Energy, measured bool) units.Money {
	var slotCost units.Money
	r.slotMigEnergy, r.slotMigDown = 0, 0
	for _, m := range moves {
		e := units.Energy(r.costs.EnergyPerGB * m.Image.GB())
		if e > 0 {
			half := e / 2
			slotEnergy[m.From] += half
			slotEnergy[m.To] += half
			r.slotMigEnergy += e
			if measured {
				cFrom := prices[m.From].Cost(half)
				cTo := prices[m.To].Cost(half)
				slotCost += cFrom + cTo
				res.CostPerDC[m.From] += cFrom
				res.CostPerDC[m.To] += cTo
				res.MigEnergy += e
			}
		}
		if r.costs.DowntimeSec > 0 {
			r.downtime[m.To] += r.costs.DowntimeSec
			r.slotMigDown += r.costs.DowntimeSec
			if measured {
				res.MigDowntimeSec += r.costs.DowntimeSec
			}
		}
	}
	return slotCost
}

// accumulate folds one measured slot into the current epoch's stats,
// reusing the slot totals chargeMoves computed so the breakdown sums to
// the headline counters by construction.
func (r *epochRun) accumulate(slotCost units.Money, slotTotal units.Energy, moves []migrate.Move, rejected int) {
	es := &r.stats[r.current]
	es.Cost += slotCost
	es.Energy += slotTotal
	es.Migrations += len(moves)
	es.MigRejected += rejected
	es.MigEnergy += r.slotMigEnergy
	es.MigDowntimeSec += r.slotMigDown
	for _, m := range moves {
		es.MigratedBytes += m.Image
	}
}
