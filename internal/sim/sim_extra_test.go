package sim_test

import (
	"testing"

	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/sim"
	"geovmp/internal/trace"
)

func TestProposedOnReplayedWorkload(t *testing.T) {
	// The stateful proposed controller must run cleanly on a replayed
	// workload: export, reload, simulate.
	sc := tinyScenario(t, 41)
	dir := t.TempDir()
	if err := trace.ExportReplay(sc.Workload, dir, sc.Horizon.Slots, 12); err != nil {
		t.Fatal(err)
	}
	replay, err := trace.LoadReplay(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := tinyScenario(t, 41)
	sc2.Workload = replay
	res, err := sim.Run(sc2, core.New(0.9, 41))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergy <= 0 {
		t.Fatal("replayed proposed run consumed no energy")
	}
	if len(res.FinalPlacement) == 0 {
		t.Fatal("no final placement recorded")
	}
}

func TestFinalPlacementCoversLastSlot(t *testing.T) {
	sc := tinyScenario(t, 43)
	res, err := sim.Run(sc, policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Horizon.Slots - 1
	for _, id := range sc.Workload.ActiveVMs(last) {
		if _, ok := res.FinalPlacement[id]; !ok {
			t.Fatalf("VM %d active in the last slot but missing from FinalPlacement", id)
		}
	}
}

func TestBatteryStateEvolvesAcrossRun(t *testing.T) {
	sc := tinyScenario(t, 47)
	before := sc.Fleet[0].Bank.SoC()
	if _, err := sim.Run(sc, policy.EnerAware{}); err != nil {
		t.Fatal(err)
	}
	after := sc.Fleet[0].Bank.SoC()
	if before == after {
		t.Fatal("battery state untouched by an 8-hour run")
	}
}

func TestForecasterLearnsDuringRun(t *testing.T) {
	sc := tinyScenario(t, 53)
	if _, err := sim.Run(sc, policy.EnerAware{}); err != nil {
		t.Fatal(err)
	}
	// After daytime slots, the last-value... the default is WCMA; its
	// forecast for the next slot should be non-negative and finite, and at
	// least one DC should have seen sun.
	sawSun := false
	for _, d := range sc.Fleet {
		if d.Forecast.Forecast(sc.Horizon.Slots) > 0 {
			sawSun = true
		}
	}
	if !sawSun {
		t.Log("no positive forecast after 8 early-morning slots (acceptable at night)")
	}
}
