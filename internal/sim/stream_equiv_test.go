package sim_test

import (
	"reflect"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

// budgetScenario builds the tiny test world over a *compiled* workload
// with an explicit fine-table budget / chunk width — Build leaves the raw
// synthetic workload in place, so the compile is explicit here, exactly
// like the experiment engine's column compile.
func budgetScenario(t *testing.T, seed uint64, budget int64, chunkSlots int) *sim.Scenario {
	t.Helper()
	spec := config.Spec{
		Scale:             0.01,
		Seed:              seed,
		Horizon:           timeutil.Hours(8),
		FineStepSec:       300,
		MaxFineTableBytes: budget,
		FineChunkSlots:    chunkSlots,
	}
	sc, err := config.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.CompileWorkload(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if budget > 0 && !c.FineChunked() {
		t.Fatal("positive budget did not chunk the fine table")
	}
	sc.Workload = c
	return sc
}

// TestChunkedRunBitIdentical is the out-of-core acceptance property: a run
// whose compiled tables stream through bounded chunk windows must produce
// a Result byte-identical to the unbounded in-core run — same costs, same
// energy, same response samples, same migration trace — for every policy
// family and several chunk widths.
func TestChunkedRunBitIdentical(t *testing.T) {
	pols := func(seed uint64) []policy.Policy {
		return []policy.Policy{core.New(0.9, seed), policy.EnerAware{}, policy.NetAware{}}
	}
	for _, chunk := range []int{0, 1, 3} {
		for pi := range pols(31) {
			want, err := sim.Run(budgetScenario(t, 31, 0, 0), pols(31)[pi])
			if err != nil {
				t.Fatal(err)
			}
			// A 1-byte budget forces both the fine and the profile tables
			// out of core.
			got, err := sim.Run(budgetScenario(t, 31, 1, chunk), pols(31)[pi])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("chunk %d, policy %s: chunked run diverged: cost %v vs %v, energy %v vs %v, migrations %d vs %d, worst resp %v vs %v",
					chunk, want.Policy, got.OpCost, want.OpCost, got.TotalEnergy, want.TotalEnergy,
					got.Migrations, want.Migrations, got.WorstResp(), want.WorstResp())
			}
		}
	}
}

// TestChunkedRunDisabledFineTable pins the legacy escape hatch: a negative
// budget still runs (no fine table at all, per-step fallback) and stays
// deterministic.
func TestChunkedRunDisabledFineTable(t *testing.T) {
	a, err := sim.Run(budgetScenario(t, 7, -1, 0), policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(budgetScenario(t, 7, -1, 0), policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("disabled-fine-table run not deterministic")
	}
	if a.TotalEnergy <= 0 {
		t.Fatal("disabled-fine-table run consumed no energy")
	}
}
