package sim_test

import (
	"math"
	"testing"

	"geovmp/internal/config"
	"geovmp/internal/core"
	"geovmp/internal/policy"
	"geovmp/internal/sim"
	"geovmp/internal/timeutil"
)

// tinyScenario is small enough for unit tests: ~20 servers, 8 hours, 5 min
// green steps.
func tinyScenario(t *testing.T, seed uint64) *sim.Scenario {
	t.Helper()
	sc, err := config.Build(config.Spec{
		Scale:       0.01,
		Seed:        seed,
		Horizon:     timeutil.Hours(8),
		FineStepSec: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func allPolicies(seed uint64) []policy.Policy {
	return []policy.Policy{
		core.New(0.9, seed),
		policy.EnerAware{},
		policy.PriAware{},
		policy.NetAware{},
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, pol := range allPolicies(5) {
		res, err := sim.Run(tinyScenario(t, 5), pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Policy != pol.Name() {
			t.Errorf("%s: result policy name %q", pol.Name(), res.Policy)
		}
		if res.TotalEnergy <= 0 {
			t.Errorf("%s: no energy consumed", pol.Name())
		}
		if res.OpCost < 0 {
			t.Errorf("%s: negative cost %v", pol.Name(), res.OpCost)
		}
		if res.MeanActiveServers <= 0 {
			t.Errorf("%s: no active servers", pol.Name())
		}
	}
}

func TestMetricsShapes(t *testing.T) {
	sc := tinyScenario(t, 7)
	res, err := sim.Run(sc, policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	measured := int(sc.Horizon.Slots) - sc.WarmupSlots
	if res.CostSeries.Len() != measured {
		t.Fatalf("cost series %d points, want %d", res.CostSeries.Len(), measured)
	}
	if res.EnergySeries.Len() != measured {
		t.Fatalf("energy series %d points, want %d", res.EnergySeries.Len(), measured)
	}
	if len(res.RespSamples) != measured*len(sc.Fleet) {
		t.Fatalf("resp samples %d, want %d", len(res.RespSamples), measured*len(sc.Fleet))
	}
	if res.RespSummary.N() != len(res.RespSamples) {
		t.Fatal("summary count mismatch")
	}
	// Series totals must agree with scalar totals.
	var seriesGJ float64
	for _, v := range res.EnergySeries.Y {
		seriesGJ += v
	}
	if math.Abs(seriesGJ-res.TotalEnergy.GJ()) > 1e-9 {
		t.Fatalf("energy series %v GJ vs total %v", seriesGJ, res.TotalEnergy.GJ())
	}
	var perDC float64
	for _, e := range res.EnergyPerDC {
		perDC += e.GJ()
	}
	if math.Abs(perDC-res.TotalEnergy.GJ()) > 1e-9 {
		t.Fatal("per-DC energies disagree with total")
	}
	var costSum float64
	for _, c := range res.CostPerDC {
		costSum += float64(c)
	}
	if math.Abs(costSum-float64(res.OpCost)) > 1e-6 {
		t.Fatal("per-DC costs disagree with total")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := sim.Run(tinyScenario(t, 11), core.New(0.9, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(tinyScenario(t, 11), core.New(0.9, 11))
	if err != nil {
		t.Fatal(err)
	}
	if a.OpCost != b.OpCost || a.TotalEnergy != b.TotalEnergy ||
		a.Migrations != b.Migrations || a.WorstResp() != b.WorstResp() {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, err := sim.Run(tinyScenario(t, 1), policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(tinyScenario(t, 2), policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	if a.OpCost == b.OpCost && a.TotalEnergy == b.TotalEnergy {
		t.Fatal("different seeds produced identical results")
	}
}

func TestEnergySourcesAddUp(t *testing.T) {
	res, err := sim.Run(tinyScenario(t, 13), policy.PriAware{})
	if err != nil {
		t.Fatal(err)
	}
	// Demand is served by renewable + battery + grid-to-load; grid total
	// also includes battery charging, so GridEnergy can exceed the load
	// share. The recoverable identities are inequalities:
	if res.GridEnergy < 0 || res.RenewableUsed < 0 || res.BatteryOut < 0 {
		t.Fatal("negative source flow")
	}
	served := res.RenewableUsed + res.BatteryOut
	if served > res.TotalEnergy+res.GridEnergy {
		t.Fatal("sources exceed demand plus grid")
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	sc := tinyScenario(t, 17)
	sc.Workload = nil
	if _, err := sim.Run(sc, policy.EnerAware{}); err == nil {
		t.Fatal("nil workload accepted")
	}

	sc = tinyScenario(t, 17)
	sc.Topo = nil
	if _, err := sim.Run(sc, policy.EnerAware{}); err == nil {
		t.Fatal("nil topology accepted")
	}

	sc = tinyScenario(t, 17)
	sc.Horizon = timeutil.Days(30) // beyond the workload's week
	if _, err := sim.Run(sc, policy.EnerAware{}); err == nil {
		t.Fatal("horizon beyond workload accepted")
	}

	sc = tinyScenario(t, 17)
	sc.Fleet = sc.Fleet[:2] // topology says 3
	if _, err := sim.Run(sc, policy.EnerAware{}); err == nil {
		t.Fatal("fleet/topology mismatch accepted")
	}
}

func TestWarmupExcluded(t *testing.T) {
	sc := tinyScenario(t, 19)
	sc.WarmupSlots = 4
	res, err := sim.Run(sc, policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostSeries.Len() != int(sc.Horizon.Slots)-4 {
		t.Fatalf("warmup not excluded: %d points", res.CostSeries.Len())
	}
	// First measured slot index is the warmup boundary.
	if res.CostSeries.X[0] != 4 {
		t.Fatalf("series starts at slot %v, want 4", res.CostSeries.X[0])
	}
}

func TestWarmupDisabledWithNegative(t *testing.T) {
	sc := tinyScenario(t, 19)
	sc.WarmupSlots = -1
	res, err := sim.Run(sc, policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostSeries.Len() != int(sc.Horizon.Slots) {
		t.Fatalf("negative warmup not disabled: %d points", res.CostSeries.Len())
	}
}

func TestResponseSamplesNonNegative(t *testing.T) {
	res, err := sim.Run(tinyScenario(t, 23), core.New(0.9, 23))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.RespSamples {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d invalid: %v", i, v)
		}
	}
}

func TestMigrationAccounting(t *testing.T) {
	res, err := sim.Run(tinyScenario(t, 29), policy.PriAware{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations > 0 && res.MigratedBytes <= 0 {
		t.Fatal("migrations recorded without bytes")
	}
	if res.Migrations == 0 && res.MigratedBytes != 0 {
		t.Fatal("bytes recorded without migrations")
	}
}

func TestTrafficSplitRecorded(t *testing.T) {
	res, err := sim.Run(tinyScenario(t, 31), policy.NetAware{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntraBytes+res.CrossBytes <= 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestFineStepEquivalenceOrder(t *testing.T) {
	// Energy at 60 s steps should be within a few percent of 300 s steps —
	// the integrator must not be wildly step-size dependent.
	scA := tinyScenario(t, 37)
	scA.FineStepSec = 60
	a, err := sim.Run(scA, policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	scB := tinyScenario(t, 37)
	scB.FineStepSec = 300
	b, err := sim.Run(scB, policy.EnerAware{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(a.TotalEnergy.GJ()-b.TotalEnergy.GJ()) / a.TotalEnergy.GJ()
	if rel > 0.05 {
		t.Fatalf("energy differs %v%% between step sizes", rel*100)
	}
}
