package dc

import (
	"math"
	"testing"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/green"
	"geovmp/internal/power"
	"geovmp/internal/price"
	"geovmp/internal/solar"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

func testDC(t *testing.T, idx int) *DC {
	t.Helper()
	bank, err := battery.New(battery.Config{
		Capacity:   100 * units.KilowattHour,
		DoD:        0.5,
		InitialSoC: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tariff := price.ZurichTariff()
	return &DC{
		Index:    idx,
		Name:     "test",
		Servers:  10,
		Model:    power.E5410(),
		Cooling:  cooling.Site{Climate: cooling.Zurich(), Model: cooling.DefaultPUE()},
		Plant:    solar.ZurichPlant(),
		Bank:     bank,
		Tariff:   tariff,
		Forecast: &solar.LastValue{},
		Green:    &green.Controller{Tariff: tariff, Bank: bank},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testDC(t, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*DC)
	}{
		{"no servers", func(d *DC) { d.Servers = 0 }},
		{"nil model", func(d *DC) { d.Model = nil }},
		{"nil bank", func(d *DC) { d.Bank = nil }},
		{"nil green", func(d *DC) { d.Green = nil }},
		{"nil forecast", func(d *DC) { d.Forecast = nil }},
		{"bad model", func(d *DC) { d.Model = &power.ServerModel{Name: "x"} }},
	}
	for _, tt := range tests {
		d := testDC(t, 0)
		tt.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}

func TestCPUCapacity(t *testing.T) {
	d := testDC(t, 0)
	if got := d.CPUCapacity(); got != 80 {
		t.Fatalf("CPU capacity = %v, want 80 reference cores", got)
	}
}

func TestMaxITPower(t *testing.T) {
	d := testDC(t, 0)
	// 10 servers x 265 W full load.
	if got := d.MaxITPower(); math.Abs(float64(got)-2650) > 1e-9 {
		t.Fatalf("max IT power = %v, want 2650 W", got)
	}
}

func TestSlotEnergyCeiling(t *testing.T) {
	d := testDC(t, 0)
	ceil := d.SlotEnergyCeiling(0)
	// At least IT power x 3600 x PUE floor.
	min := float64(d.MaxITPower()) * 3600 * 1.12
	if float64(ceil) < min-1 {
		t.Fatalf("ceiling %v below PUE-floored IT energy %v", ceil, min)
	}
}

func TestFreeEnergy(t *testing.T) {
	d := testDC(t, 0)
	d.Forecast.Observe(0, 10*units.KilowattHour)
	free := d.FreeEnergy(1)
	want := d.Bank.UsableAC() + 10*units.KilowattHour
	if free != want {
		t.Fatalf("free energy = %v, want %v", free, want)
	}
}

func TestFleetValidate(t *testing.T) {
	f := Fleet{testDC(t, 0), testDC(t, 1)}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Fleet{testDC(t, 0), testDC(t, 5)}
	if err := bad.Validate(); err == nil {
		t.Fatal("index mismatch accepted")
	}
}

func TestFleetAggregates(t *testing.T) {
	f := Fleet{testDC(t, 0), testDC(t, 1), testDC(t, 2)}
	if f.TotalServers() != 30 {
		t.Fatalf("total servers = %d", f.TotalServers())
	}
	if f.TotalCPUCapacity() != 240 {
		t.Fatalf("total capacity = %v", f.TotalCPUCapacity())
	}
	if len(f.Tariffs()) != 3 || f.Tariffs()[0].Name != "Zurich" {
		t.Fatalf("tariffs wrong: %v", f.Tariffs())
	}
}

func TestSlotEnergyCeilingVariesWithWeather(t *testing.T) {
	d := testDC(t, 0)
	seen := map[string]bool{}
	for sl := timeutil.Slot(0); sl < 48; sl += 6 {
		seen[d.Cooling.Climate.Name] = true
		_ = sl
	}
	a := d.SlotEnergyCeiling(3)  // night
	b := d.SlotEnergyCeiling(14) // afternoon
	if a == b {
		t.Skip("weather produced identical PUE; acceptable but rare")
	}
}
