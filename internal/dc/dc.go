// Package dc composes one geo-distributed data center out of the substrate
// models: a homogeneous server fleet, a cooling site (PUE), a PV plant with
// its forecaster, a battery bank, a grid tariff and the green controller
// that arbitrates among them. The paper's Table I instantiates three of
// these (Lisbon, Zurich, Helsinki).
package dc

import (
	"fmt"

	"geovmp/internal/battery"
	"geovmp/internal/cooling"
	"geovmp/internal/green"
	"geovmp/internal/power"
	"geovmp/internal/price"
	"geovmp/internal/solar"
	"geovmp/internal/timeutil"
	"geovmp/internal/units"
)

// DC is one data center. Mutable state (battery charge, forecaster history)
// lives in the referenced components; the rest is immutable configuration.
type DC struct {
	Index    int
	Name     string
	Servers  int
	Model    *power.ServerModel
	Cooling  cooling.Site
	Plant    solar.Plant
	Bank     *battery.Bank
	Tariff   price.Tariff
	Forecast solar.Forecaster
	Green    *green.Controller
}

// Validate checks the composition.
func (d *DC) Validate() error {
	if d.Servers <= 0 {
		return fmt.Errorf("dc %s: no servers", d.Name)
	}
	if d.Model == nil {
		return fmt.Errorf("dc %s: no server model", d.Name)
	}
	if err := d.Model.Validate(); err != nil {
		return fmt.Errorf("dc %s: %w", d.Name, err)
	}
	if d.Bank == nil || d.Green == nil || d.Forecast == nil {
		return fmt.Errorf("dc %s: missing energy components", d.Name)
	}
	return nil
}

// CPUCapacity returns the fleet compute capacity in reference cores at the
// top frequency.
func (d *DC) CPUCapacity() float64 {
	return float64(d.Servers) * d.Model.MaxCapacity()
}

// MaxITPower returns the fleet's worst-case IT power draw.
func (d *DC) MaxITPower() units.Power {
	top := d.Model.TopLevel()
	return units.Power(float64(d.Servers) * float64(d.Model.Power(top, d.Model.MaxCapacity())))
}

// SlotEnergyCeiling returns the most facility energy the DC could consume in
// one slot: the full fleet at peak power times the slot's mean PUE. Cap
// computations clamp against it.
func (d *DC) SlotEnergyCeiling(sl timeutil.Slot) units.Energy {
	pue := d.Cooling.MeanPUEOverSlot(sl)
	return units.Energy(float64(d.MaxITPower().ForDuration(timeutil.SlotSeconds)) * pue)
}

// FreeEnergy returns the energy available to the DC next slot without the
// grid: usable battery output plus the renewable forecast for slot sl.
func (d *DC) FreeEnergy(sl timeutil.Slot) units.Energy {
	return d.Bank.UsableAC() + d.Forecast.Forecast(sl)
}

// Fleet is the ordered collection of DCs in the experiment.
type Fleet []*DC

// Validate checks every member and index consistency.
func (f Fleet) Validate() error {
	for i, d := range f {
		if d.Index != i {
			return fmt.Errorf("dc %s: index %d at position %d", d.Name, d.Index, i)
		}
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalServers sums the fleet's servers.
func (f Fleet) TotalServers() int {
	n := 0
	for _, d := range f {
		n += d.Servers
	}
	return n
}

// TotalCPUCapacity sums the fleet's compute capacity in reference cores.
func (f Fleet) TotalCPUCapacity() float64 {
	var c float64
	for _, d := range f {
		c += d.CPUCapacity()
	}
	return c
}

// Tariffs returns the fleet's tariffs, indexed like the fleet.
func (f Fleet) Tariffs() []price.Tariff {
	out := make([]price.Tariff, len(f))
	for i, d := range f {
		out[i] = d.Tariff
	}
	return out
}
